(* Fault-simulation engines: the critical-path-tracing engine (FFR
   sensitization + event-driven stem propagation, the default) must
   reproduce the full-cone reference exactly, fault by fault; the
   structural preprocessing behind it (FFR stems, propagation
   dominators, observability reachability) is checked against
   brute-force definitions; and effective_subset against the naive
   serial reverse-compaction walk it replaces. *)

open Netlist
module Fs = Atpg.Fault_simulation

let s27m = lazy (Techmap.Mapper.map (Circuits.s27 ()))
let s344 = lazy (Circuits.by_name "s344")
let s1196 = lazy (Circuits.by_name "s1196")

let fault_t c =
  Alcotest.testable
    (fun fmt f -> Format.pp_print_string fmt (Atpg.Fault.to_string c f))
    Atpg.Fault.equal

let random_vectors rng c n =
  let len = Array.length (Circuit.sources c) in
  List.init n (fun _ -> Array.init len (fun _ -> Util.Rng.bool rng))

(* ---------- structural preprocessing ---------- *)

(* Propagation successors: fanout edges minus edges into DFFs (a fault
   effect is observed at the D pin, never shifted onward here). *)
let prop_succs c id =
  (Circuit.node c id).Circuit.fanouts |> Array.to_list
  |> List.filter (fun s ->
         not (Gate.equal_kind (Circuit.node c s).Circuit.kind Gate.Dff))

let observable_ref c id =
  let nd = Circuit.node c id in
  Gate.equal_kind nd.Circuit.kind Gate.Output
  || Array.exists
       (fun d -> (Circuit.node c d).Circuit.fanins.(0) = id)
       (Circuit.dffs c)

(* Can [id] reach an observable with node [removed] deleted? *)
let can_reach_obs c ~removed id =
  let n = Circuit.node_count c in
  let seen = Array.make n false in
  let rec go id =
    id <> removed && (not seen.(id))
    && begin
         seen.(id) <- true;
         observable_ref c id || List.exists go (prop_succs c id)
       end
  in
  go id

let check_preprocessing_on c =
  let comp = Compiled.of_circuit c in
  let n = Circuit.node_count c in
  let observable = Compiled.observable comp in
  let reaches = Compiled.reaches_observable comp in
  let ffr_stem = Compiled.ffr_stem comp in
  let stems = Compiled.stems comp in
  let idom = Compiled.idom comp in
  let exit_id = Compiled.exit_id comp in
  for id = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "observable %d" id)
      (observable_ref c id) observable.(id);
    Alcotest.(check bool)
      (Printf.sprintf "reaches %d" id)
      (can_reach_obs c ~removed:(-1) id)
      reaches.(id)
  done;
  (* a stem maps to itself iff it has fanout-edge-count <> 1 or its
     unique consumer is a DFF; every other node's chain of unique
     fanout edges hits exactly [ffr_stem.(id)] as the first stem *)
  for id = 0 to n - 1 do
    let rec walk cur =
      let fo = (Circuit.node c cur).Circuit.fanouts in
      if
        Array.length fo <> 1
        || Gate.equal_kind (Circuit.node c fo.(0)).Circuit.kind Gate.Dff
      then cur
      else walk fo.(0)
    in
    Alcotest.(check int) (Printf.sprintf "ffr_stem %d" id) (walk id) ffr_stem.(id)
  done;
  Array.iter
    (fun s -> Alcotest.(check int) "stem fixpoint" s ffr_stem.(s))
    stems;
  (* brute-force immediate dominators: the strict dominator set of a
     reaching node (every node whose removal disconnects it from all
     observables, plus the virtual exit) must satisfy the chain
     property S(id) = {idom(id)} U S(idom(id)) *)
  let strict_doms id =
    let ds = ref [ exit_id ] in
    for d = n - 1 downto 0 do
      if d <> id && reaches.(d) && not (can_reach_obs c ~removed:d id) then
        ds := d :: !ds
    done;
    !ds
  in
  let dom_sets = Array.make (n + 1) [] in
  dom_sets.(exit_id) <- [];
  for id = 0 to n - 1 do
    if reaches.(id) then dom_sets.(id) <- strict_doms id
  done;
  for id = 0 to n - 1 do
    if not reaches.(id) then
      Alcotest.(check int) (Printf.sprintf "dead idom %d" id) (-1) idom.(id)
    else begin
      let d = idom.(id) in
      Alcotest.(check bool)
        (Printf.sprintf "idom %d is a dominator" id)
        true
        (List.mem d dom_sets.(id));
      Alcotest.(check (list int))
        (Printf.sprintf "dominator chain at %d" id)
        (List.sort compare dom_sets.(id))
        (List.sort compare
           (if d = exit_id then [ exit_id ] else d :: dom_sets.(d)))
    end
  done

let check_preprocessing () =
  check_preprocessing_on (Lazy.force s27m);
  List.iter
    (fun seed ->
      check_preprocessing_on
        (Circuits.generate
           {
             Circuits.name = Printf.sprintf "pre%d" seed;
             n_pi = 4;
             n_po = 2;
             n_ff = 3;
             n_gates = 40;
             seed;
           }))
    [ 1; 2; 3 ]

(* ---------- engine equivalence ---------- *)

let check_split_agrees tag c ~seed ~n_vectors =
  let faults = Atpg.Fault.collapsed_faults c in
  let rng = Util.Rng.create seed in
  let vectors = random_vectors rng c n_vectors in
  let m_cone = Fs.make ~engine:Fs.Cone c in
  let m_cpt = Fs.make ~engine:Fs.Cpt c in
  let m_ppsfp = Fs.make ~engine:Fs.Ppsfp c in
  let det_cone, undet_cone =
    Fs.split ~machine:m_cone c ~faults ~vectors
  in
  let det_cpt, undet_cpt = Fs.split ~machine:m_cpt c ~faults ~vectors in
  let det_pp, undet_pp = Fs.split ~machine:m_ppsfp c ~faults ~vectors in
  Alcotest.(check (list (fault_t c)))
    (tag ^ " detected identical") det_cone det_cpt;
  Alcotest.(check (list (fault_t c)))
    (tag ^ " undetected identical") undet_cone undet_cpt;
  Alcotest.(check (list (fault_t c)))
    (tag ^ " ppsfp detected identical") det_cone det_pp;
  Alcotest.(check (list (fault_t c)))
    (tag ^ " ppsfp undetected identical") undet_cone undet_pp;
  (* fault dropping must not change the partition: later batches skip
     already-detected faults, so any cross-batch detection discrepancy
     would surface here *)
  let det_nodrop, undet_nodrop =
    Fs.split ~machine:m_ppsfp ~drop:false c ~faults ~vectors
  in
  Alcotest.(check (list (fault_t c)))
    (tag ^ " drop-independent detected") det_pp det_nodrop;
  Alcotest.(check (list (fault_t c)))
    (tag ^ " drop-independent undetected") undet_pp undet_nodrop;
  (* narrow ppsfp machines re-batch the same vectors differently but
     must land on the same partition *)
  List.iter
    (fun w ->
      let d, u =
        Fs.split ~machine:(Fs.make ~engine:Fs.Ppsfp ~width:w c) c ~faults
          ~vectors
      in
      Alcotest.(check (list (fault_t c)))
        (Printf.sprintf "%s ppsfp w%d detected" tag w)
        det_cone d;
      Alcotest.(check (list (fault_t c)))
        (Printf.sprintf "%s ppsfp w%d undetected" tag w)
        undet_cone u)
    [ 1; 4 ];
  (* same machines again on a different vector set: persistent state
     (memos, stamps, interned cones) must not leak across runs *)
  let vectors2 = random_vectors rng c (max 1 (n_vectors / 2)) in
  let d1, _ = Fs.split ~machine:m_cone c ~faults ~vectors:vectors2 in
  let d2, _ = Fs.split ~machine:m_cpt c ~faults ~vectors:vectors2 in
  let d3, _ = Fs.split c ~faults ~vectors:vectors2 in
  let d4, _ = Fs.split ~machine:m_ppsfp c ~faults ~vectors:vectors2 in
  Alcotest.(check (list (fault_t c))) (tag ^ " reuse cone") d1 d2;
  Alcotest.(check (list (fault_t c))) (tag ^ " reuse vs fresh") d1 d3;
  Alcotest.(check (list (fault_t c))) (tag ^ " reuse ppsfp") d1 d4;
  (* effective_subset bit-identical across engines *)
  let e_cone = Fs.effective_subset ~machine:m_cone c ~faults ~vectors in
  let e_cpt = Fs.effective_subset ~machine:m_cpt c ~faults ~vectors in
  let e_pp = Fs.effective_subset ~machine:m_ppsfp c ~faults ~vectors in
  Alcotest.(check (list (array bool)))
    (tag ^ " effective_subset identical") e_cone e_cpt;
  Alcotest.(check (list (array bool)))
    (tag ^ " effective_subset ppsfp identical") e_cone e_pp;
  Alcotest.(check bool)
    (tag ^ " coverage identical") true
    (Fs.coverage ~machine:m_cone c ~faults ~vectors
    = Fs.coverage ~machine:m_cpt c ~faults ~vectors);
  (* the full per-(fault, pattern) detection matrix — not just the
     detected set — must be bit-identical between PPSFP and Cone *)
  let mx_cone = Fs.detection_matrix ~machine:m_cone c ~faults ~vectors in
  List.iter
    (fun w ->
      let mx =
        Fs.detection_matrix
          ~machine:(Fs.make ~engine:Fs.Ppsfp ~width:w c)
          c ~faults ~vectors
      in
      Alcotest.(check (array (array int64)))
        (Printf.sprintf "%s detection matrix w%d" tag w)
        mx_cone mx)
    [ 1; 4; 8 ]

let check_golden_s27 () =
  check_split_agrees "s27/seed1" (Lazy.force s27m) ~seed:1 ~n_vectors:80;
  check_split_agrees "s27/seed2" (Lazy.force s27m) ~seed:2 ~n_vectors:5

let check_golden_s344 () =
  check_split_agrees "s344/seed3" (Lazy.force s344) ~seed:3 ~n_vectors:70;
  check_split_agrees "s344/seed4" (Lazy.force s344) ~seed:4 ~n_vectors:20

let check_golden_s1196 () =
  check_split_agrees "s1196/seed5" (Lazy.force s1196) ~seed:5 ~n_vectors:40

let prop_engines_agree =
  QCheck.Test.make ~name:"cpt engine equals cone engine" ~count:15
    (QCheck.make
       QCheck.Gen.(triple (int_range 0 10000) (int_range 1 70) (int_range 10 80)))
    (fun (seed, n_vectors, n_gates) ->
      let c =
        Circuits.generate
          {
            Circuits.name = Printf.sprintf "fprop%d" seed;
            n_pi = 3 + (seed mod 4);
            n_po = 2;
            n_ff = 2 + (seed mod 5);
            n_gates;
            seed;
          }
      in
      check_split_agrees (Printf.sprintf "fprop%d" seed) c ~seed ~n_vectors;
      true)

(* ---------- effective_subset vs the naive serial walk ---------- *)

let naive_reverse_compaction c ~faults ~vectors =
  (* one vector at a time, last to first, with fault dropping — the
     textbook (quadratic) formulation effective_subset vectorises *)
  let m = Fs.make ~engine:Fs.Cone c in
  let covered = Hashtbl.create 97 in
  let keep = ref [] in
  List.iter
    (fun v ->
      let live = List.filter (fun f -> not (Hashtbl.mem covered f)) faults in
      let det, _ = Fs.split ~machine:m c ~faults:live ~vectors:[ v ] in
      if det <> [] then begin
        List.iter (fun f -> Hashtbl.replace covered f ()) det;
        keep := v :: !keep
      end)
    (List.rev vectors);
  !keep

let check_effective_subset_is_naive () =
  List.iter
    (fun (c, seed, n_vectors) ->
      let faults = Atpg.Fault.collapsed_faults c in
      let rng = Util.Rng.create seed in
      let vectors = random_vectors rng c n_vectors in
      let expected = naive_reverse_compaction c ~faults ~vectors in
      List.iter
        (fun engine ->
          let got =
            Fs.effective_subset ~machine:(Fs.make ~engine c) c ~faults ~vectors
          in
          Alcotest.(check (list (array bool))) "naive reverse walk" expected got)
        [ Fs.Cone; Fs.Cpt; Fs.Ppsfp ])
    [ (Lazy.force s27m, 11, 90); (Lazy.force s344, 12, 30) ]

(* ---------- machine API ---------- *)

let check_machine_mismatch_raises () =
  let c = Lazy.force s27m in
  let other = Circuit.copy c in
  let m = Fs.make c in
  let faults = Atpg.Fault.collapsed_faults c in
  let vectors = random_vectors (Util.Rng.create 1) c 3 in
  Alcotest.check_raises "structurally equal is not enough"
    (Invalid_argument "Fault_simulation: machine compiled from a different circuit")
    (fun () -> ignore (Fs.split ~machine:m other ~faults ~vectors))

let check_with_machine () =
  let c = Lazy.force s27m in
  let faults = Atpg.Fault.collapsed_faults c in
  let vectors = random_vectors (Util.Rng.create 2) c 10 in
  let d1 =
    Fs.with_machine c (fun m ->
        Alcotest.(check bool) "default engine is cpt" true (Fs.engine m = Fs.Cpt);
        Alcotest.(check bool) "circuit accessor" true (Fs.circuit m == c);
        fst (Fs.split ~machine:m c ~faults ~vectors))
  in
  let d2, _ = Fs.split c ~faults ~vectors in
  Alcotest.(check (list (fault_t c))) "with_machine equals fresh" d1 d2

let check_width_api () =
  let c = Lazy.force s27m in
  Alcotest.(check int) "cpt width" 1 (Fs.width (Fs.make c));
  Alcotest.(check int) "ppsfp default width" 8
    (Fs.width (Fs.make ~engine:Fs.Ppsfp c));
  Alcotest.(check int) "ppsfp narrow width" 4
    (Fs.width (Fs.make ~engine:Fs.Ppsfp ~width:4 c));
  Alcotest.check_raises "cpt rejects wide"
    (Invalid_argument "Fault_simulation: width > 1 requires the Ppsfp engine")
    (fun () -> ignore (Fs.make ~engine:Fs.Cpt ~width:4 c));
  Alcotest.check_raises "ppsfp width bounds"
    (Invalid_argument "Fault_simulation: width must be within 1..8") (fun () ->
      ignore (Fs.make ~engine:Fs.Ppsfp ~width:9 c))

(* ---------- telemetry counters ---------- *)

let check_counters () =
  let c = Lazy.force s344 in
  let faults = Atpg.Fault.collapsed_faults c in
  let vectors = random_vectors (Util.Rng.create 9) c 64 in
  let was_enabled = Telemetry.enabled () in
  Telemetry.reset ();
  Telemetry.enable ();
  let get name = Option.value ~default:0 (Telemetry.Counter.find name) in
  ignore (Fs.split ~machine:(Fs.make ~engine:Fs.Cpt c) c ~faults ~vectors);
  let traces = get "atpg.fault_sim.ffr_traces" in
  let events = get "atpg.fault_sim.stem_events" in
  let exits = get "atpg.fault_sim.early_exits" in
  ignore (Fs.split ~machine:(Fs.make ~engine:Fs.Cone c) c ~faults ~vectors);
  let events_after_cone = get "atpg.fault_sim.stem_events" in
  (* two 64-pattern batches on a width-1 ppsfp machine: the second
     batch must actually drop the faults the first one detected *)
  let vectors_2b = random_vectors (Util.Rng.create 10) c 128 in
  ignore
    (Fs.split
       ~machine:(Fs.make ~engine:Fs.Ppsfp ~width:1 c)
       c ~faults ~vectors:vectors_2b);
  let ppsfp_events = get "atpg.fault_sim.ppsfp_events" in
  let dropped = get "atpg.fault_sim.dropped_faults" in
  let events_after_ppsfp = get "atpg.fault_sim.stem_events" in
  Telemetry.reset ();
  if not was_enabled then Telemetry.disable ();
  Alcotest.(check bool) "ffr traces counted" true (traces > 0);
  Alcotest.(check bool) "stem events counted" true (events > 0);
  Alcotest.(check bool) "early exits counted" true (exits > 0);
  Alcotest.(check int) "cone engine emits no stem events" events events_after_cone;
  Alcotest.(check bool) "ppsfp events counted" true (ppsfp_events > 0);
  Alcotest.(check bool) "dropped faults counted" true (dropped > 0);
  Alcotest.(check int)
    "ppsfp engine emits no stem events" events_after_cone events_after_ppsfp

let suite =
  [
    Alcotest.test_case "structural preprocessing vs brute force" `Quick
      check_preprocessing;
    Alcotest.test_case "golden equivalence s27" `Quick check_golden_s27;
    Alcotest.test_case "golden equivalence s344" `Quick check_golden_s344;
    Alcotest.test_case "golden equivalence s1196" `Quick check_golden_s1196;
    Alcotest.test_case "effective_subset equals naive walk" `Quick
      check_effective_subset_is_naive;
    Alcotest.test_case "machine circuit mismatch" `Quick
      check_machine_mismatch_raises;
    Alcotest.test_case "with_machine" `Quick check_with_machine;
    Alcotest.test_case "machine width API" `Quick check_width_api;
    Alcotest.test_case "engine counters" `Quick check_counters;
    QCheck_alcotest.to_alcotest prop_engines_agree;
  ]
