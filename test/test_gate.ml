(* Gate kinds: arity rules, controlling values, three-/two-/five-valued
   evaluation consistency. *)

open Netlist

let logic = Alcotest.testable Logic.pp Logic.equal

let logic_kinds =
  Gate.[ Buf; Not; And; Nand; Or; Nor; Xor; Xnor ]

let check_string_roundtrip () =
  List.iter
    (fun k ->
      Alcotest.check Alcotest.string "names" (Gate.to_string k)
        (Gate.to_string (Gate.of_string (Gate.to_string k))))
    (Gate.[ Input; Dff; Output ] @ logic_kinds);
  Alcotest.check Alcotest.bool "inv alias" true
    (Gate.equal_kind (Gate.of_string "inv") Gate.Not);
  Alcotest.check Alcotest.bool "buff alias" true
    (Gate.equal_kind (Gate.of_string "BUFF") Gate.Buf)

let check_controlling_values () =
  Alcotest.check (Alcotest.option logic) "and" (Some Logic.Zero)
    (Gate.controlling_value Gate.And);
  Alcotest.check (Alcotest.option logic) "nand" (Some Logic.Zero)
    (Gate.controlling_value Gate.Nand);
  Alcotest.check (Alcotest.option logic) "or" (Some Logic.One)
    (Gate.controlling_value Gate.Or);
  Alcotest.check (Alcotest.option logic) "nor" (Some Logic.One)
    (Gate.controlling_value Gate.Nor);
  Alcotest.check (Alcotest.option logic) "xor" None
    (Gate.controlling_value Gate.Xor)

let check_controlled_responses () =
  Alcotest.check (Alcotest.option logic) "nand" (Some Logic.One)
    (Gate.controlled_response Gate.Nand);
  Alcotest.check (Alcotest.option logic) "nor" (Some Logic.Zero)
    (Gate.controlled_response Gate.Nor)

let check_inversion_parity () =
  Alcotest.check Alcotest.bool "nand inverts" true (Gate.inversion Gate.Nand);
  Alcotest.check Alcotest.bool "and does not" false (Gate.inversion Gate.And);
  Alcotest.check Alcotest.bool "xnor inverts" true (Gate.inversion Gate.Xnor)

let check_arity_enforcement () =
  Alcotest.check_raises "nand arity 1"
    (Invalid_argument "Gate.eval: NAND with 1 inputs") (fun () ->
      ignore (Gate.eval Gate.Nand [| Logic.One |]));
  Alcotest.check_raises "not arity 2"
    (Invalid_argument "Gate.eval: NOT with 2 inputs") (fun () ->
      ignore (Gate.eval Gate.Not [| Logic.One; Logic.Zero |]))

let check_known_evaluations () =
  Alcotest.check logic "nand(1,1)" Logic.Zero
    (Gate.eval Gate.Nand [| Logic.One; Logic.One |]);
  Alcotest.check logic "nand(0,X)" Logic.One
    (Gate.eval Gate.Nand [| Logic.Zero; Logic.X |]);
  Alcotest.check logic "nor(X,1)" Logic.Zero
    (Gate.eval Gate.Nor [| Logic.X; Logic.One |]);
  Alcotest.check logic "nor(0,0,0)" Logic.One
    (Gate.eval Gate.Nor [| Logic.Zero; Logic.Zero; Logic.Zero |]);
  Alcotest.check logic "xor(1,1,1)" Logic.One
    (Gate.eval Gate.Xor [| Logic.One; Logic.One; Logic.One |]);
  Alcotest.check logic "xnor(1,0)" Logic.Zero
    (Gate.eval Gate.Xnor [| Logic.One; Logic.Zero |])

(* eval_bool must agree with eval on definite inputs; eval_five must
   agree on its good and faulty rails. *)
let gen_kind_and_inputs =
  let open QCheck.Gen in
  let kind = oneofl logic_kinds in
  let pair_gen =
    kind >>= fun k ->
    let n =
      match Gate.max_fanin k with
      | Some 1 -> pure 1
      | Some _ | None -> int_range 2 4
    in
    n >>= fun n ->
    array_size (pure n) bool >|= fun inputs -> (k, inputs)
  in
  QCheck.make pair_gen

let prop_bool_matches_ternary =
  QCheck.Test.make ~name:"eval_bool agrees with eval" ~count:500
    gen_kind_and_inputs (fun (k, inputs) ->
      let t = Gate.eval k (Array.map Logic.of_bool inputs) in
      Logic.equal t (Logic.of_bool (Gate.eval_bool k inputs)))

let prop_five_good_rail =
  QCheck.Test.make ~name:"eval_five good rail agrees with eval" ~count:500
    gen_kind_and_inputs (fun (k, inputs) ->
      let fv =
        Gate.eval_five k
          (Array.map (fun b -> Logic.Five.of_ternary (Logic.of_bool b)) inputs)
      in
      Logic.equal (Logic.Five.good fv) (Logic.of_bool (Gate.eval_bool k inputs)))

let prop_x_monotone =
  (* replacing an input by X can only keep the output or turn it X *)
  QCheck.Test.make ~name:"X-monotonicity" ~count:500 gen_kind_and_inputs
    (fun (k, inputs) ->
      let full = Gate.eval k (Array.map Logic.of_bool inputs) in
      let n = Array.length inputs in
      let ok = ref true in
      for i = 0 to n - 1 do
        let weakened = Array.map Logic.of_bool inputs in
        weakened.(i) <- Logic.X;
        let v = Gate.eval k weakened in
        if not (Logic.equal v full || Logic.equal v Logic.X) then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "string roundtrip" `Quick check_string_roundtrip;
    Alcotest.test_case "controlling values" `Quick check_controlling_values;
    Alcotest.test_case "controlled responses" `Quick check_controlled_responses;
    Alcotest.test_case "inversion parity" `Quick check_inversion_parity;
    Alcotest.test_case "arity enforcement" `Quick check_arity_enforcement;
    Alcotest.test_case "known evaluations" `Quick check_known_evaluations;
    QCheck_alcotest.to_alcotest prop_bool_matches_ternary;
    QCheck_alcotest.to_alcotest prop_five_good_rail;
    QCheck_alcotest.to_alcotest prop_x_monotone;
  ]
