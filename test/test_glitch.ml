(* Delay-annotated glitch simulation and the min-heap under it. *)

open Netlist

(* ---------- heap ---------- *)

let check_heap_orders () =
  let h = Util.Heap.create compare in
  List.iter (Util.Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  Alcotest.(check int) "length" 7 (Util.Heap.length h);
  let drained = List.init 7 (fun _ -> Util.Heap.pop h) in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ] drained;
  Alcotest.(check bool) "empty" true (Util.Heap.is_empty h)

let check_heap_errors () =
  let h : int Util.Heap.t = Util.Heap.create compare in
  Alcotest.check_raises "pop empty" Not_found (fun () -> ignore (Util.Heap.pop h));
  Alcotest.check_raises "peek empty" Not_found (fun () -> ignore (Util.Heap.peek h))

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains sorted" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 40) int)
    (fun xs ->
      let h = Util.Heap.create compare in
      List.iter (Util.Heap.push h) xs;
      let drained = List.init (List.length xs) (fun _ -> Util.Heap.pop h) in
      drained = List.sort compare xs)

(* ---------- glitch sim ---------- *)

let mapped name = Techmap.Mapper.map (Circuits.by_name name)

(* Classic hazard circuit: f = NAND(a, NOT a) is constantly 1, but a
   transition on [a] races through the two paths of unequal delay and
   produces a glitch under transport-delay semantics. *)
let hazard_circuit () =
  let b = Circuit.Builder.create ~name:"hazard" () in
  let a = Circuit.Builder.add_input b "a" in
  let na = Circuit.Builder.add_gate b Gate.Not "na" [ a ] in
  let na2 = Circuit.Builder.add_gate b Gate.Not "na2" [ na ] in
  let na3 = Circuit.Builder.add_gate b Gate.Not "na3" [ na2 ] in
  let g = Circuit.Builder.add_gate b Gate.Nand "g" [ a; na3 ] in
  let _ = Circuit.Builder.add_output b "po" g in
  Circuit.Builder.build b

let check_static_hazard_detected () =
  let c = hazard_circuit () in
  let timing = Sta.analyze c in
  let sim = Sta.Glitch_sim.create timing in
  Sta.Glitch_sim.init sim (fun _ -> false);
  let g = Circuit.find c "g" in
  Alcotest.(check bool) "g settles at 1" true (Sta.Glitch_sim.values sim).(g);
  let a = Circuit.find c "a" in
  let caused = Sta.Glitch_sim.apply sim [ (a, true) ] in
  (* zero-delay: g stays 1 (NAND(a, not a) = 1 always); transport:
     g pulses low and back -> two transitions on g *)
  Alcotest.(check int) "g glitched" 2 (Sta.Glitch_sim.transitions sim).(g);
  Alcotest.(check bool) "still settles at 1" true (Sta.Glitch_sim.values sim).(g);
  Alcotest.(check bool) "counted" true (caused >= 2)

let check_final_values_match_zero_delay () =
  let c = mapped "s344" in
  let timing = Sta.analyze c in
  let gsim = Sta.Glitch_sim.create timing in
  let esim = Sim.Event_sim.create c in
  let rng = Util.Rng.create 13 in
  let current = Array.make (Circuit.node_count c) false in
  Sta.Glitch_sim.init gsim (fun _ -> false);
  Sim.Event_sim.init esim (fun _ -> false);
  for _ = 1 to 25 do
    let changes = ref [] in
    Array.iter
      (fun id ->
        if Util.Rng.bool rng then begin
          current.(id) <- not current.(id);
          changes := (id, current.(id)) :: !changes
        end)
      (Circuit.sources c);
    ignore (Sta.Glitch_sim.apply gsim !changes);
    ignore (Sim.Event_sim.set_sources esim !changes);
    Alcotest.(check bool) "same settled values" true
      (Sta.Glitch_sim.values gsim = Sim.Event_sim.values esim)
  done

let check_glitch_factor_at_least_one () =
  let c = mapped "s344" in
  let timing = Sta.analyze c in
  let gsim = Sta.Glitch_sim.create timing in
  let esim = Sim.Event_sim.create c in
  let rng = Util.Rng.create 17 in
  let current = Array.make (Circuit.node_count c) false in
  Sta.Glitch_sim.init gsim (fun _ -> false);
  Sim.Event_sim.init esim (fun _ -> false);
  for _ = 1 to 25 do
    let changes = ref [] in
    Array.iter
      (fun id ->
        if Util.Rng.bool rng then begin
          current.(id) <- not current.(id);
          changes := (id, current.(id)) :: !changes
        end)
      (Circuit.sources c);
    ignore (Sta.Glitch_sim.apply gsim !changes);
    ignore (Sim.Event_sim.set_sources esim !changes)
  done;
  let glitchy = Sta.Glitch_sim.total_transitions gsim in
  let settled = Sim.Event_sim.total_toggles esim in
  Alcotest.(check bool)
    (Printf.sprintf "glitchy %d >= settled %d" glitchy settled)
    true (glitchy >= settled)

let check_rejects_gate_change () =
  let c = mapped "s27" in
  let sim = Sta.Glitch_sim.create (Sta.analyze c) in
  Sta.Glitch_sim.init sim (fun _ -> false);
  let gate =
    Array.to_list (Circuit.nodes c)
    |> List.find (fun nd -> Gate.is_logic nd.Circuit.kind)
  in
  Alcotest.check_raises "gate"
    (Invalid_argument "Glitch_sim.apply: not a source node") (fun () ->
      ignore (Sta.Glitch_sim.apply sim [ (gate.Circuit.id, true) ]))

let suite =
  [
    Alcotest.test_case "heap orders" `Quick check_heap_orders;
    Alcotest.test_case "heap errors" `Quick check_heap_errors;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    Alcotest.test_case "static hazard detected" `Quick check_static_hazard_detected;
    Alcotest.test_case "final values match zero-delay" `Quick
      check_final_values_match_zero_delay;
    Alcotest.test_case "glitch factor >= 1" `Quick check_glitch_factor_at_least_one;
    Alcotest.test_case "rejects gate changes" `Quick check_rejects_gate_change;
  ]
