(* Leakage-observability-directed PODEM-style justification. *)

open Netlist

let logic = Alcotest.testable Logic.pp Logic.equal

let mapped_s27 = lazy (Techmap.Mapper.map (Circuits.s27 ()))

let fresh_values c =
  let v = Sim.Ternary_sim.make_values c Logic.X in
  Sim.Ternary_sim.propagate c v;
  v

let engine ?(direction = Scanpower.Justify.Structural) c controllable =
  Scanpower.Justify.create c ~controllable ~direction

(* a, b -> NAND g -> NOT h *)
let gadget () =
  let b = Circuit.Builder.create ~name:"j" () in
  let a = Circuit.Builder.add_input b "a" in
  let b2 = Circuit.Builder.add_input b "b" in
  let g = Circuit.Builder.add_gate b Gate.Nand "g" [ a; b2 ] in
  let h = Circuit.Builder.add_gate b Gate.Not "h" [ g ] in
  let _ = Circuit.Builder.add_output b "po" h in
  Circuit.Builder.build b

let check_justify_simple_objective () =
  let c = gadget () in
  let a = Circuit.find c "a" and b2 = Circuit.find c "b" in
  let g = Circuit.find c "g" in
  let e = engine c [ a; b2 ] in
  (* force the NAND output low: needs both inputs 1 *)
  match Scanpower.Justify.justify e ~values:(fresh_values c) g Logic.Zero with
  | None -> Alcotest.fail "must be justifiable"
  | Some v ->
    Alcotest.check logic "a" Logic.One v.(a);
    Alcotest.check logic "b" Logic.One v.(b2);
    Alcotest.check logic "g" Logic.Zero v.(g)

let check_justify_through_inversion () =
  let c = gadget () in
  let a = Circuit.find c "a" and b2 = Circuit.find c "b" in
  let h = Circuit.find c "h" in
  let e = engine c [ a; b2 ] in
  (* h = NOT(NAND(a,b)) = AND: h=1 needs a=b=1 *)
  match Scanpower.Justify.justify e ~values:(fresh_values c) h Logic.One with
  | None -> Alcotest.fail "must be justifiable"
  | Some v -> Alcotest.check logic "h" Logic.One v.(h)

let check_justify_fails_without_control () =
  let c = gadget () in
  let a = Circuit.find c "a" in
  let g = Circuit.find c "g" in
  (* only a is controllable: g=0 needs BOTH inputs 1 *)
  let e = engine c [ a ] in
  Alcotest.(check bool) "unjustifiable" true
    (Scanpower.Justify.justify e ~values:(fresh_values c) g Logic.Zero = None);
  (* but g=1 needs only a=0 *)
  Alcotest.(check bool) "justifiable" true
    (Scanpower.Justify.justify e ~values:(fresh_values c) g Logic.One <> None)

let check_justify_respects_existing_assignment () =
  let c = gadget () in
  let a = Circuit.find c "a" and b2 = Circuit.find c "b" in
  let g = Circuit.find c "g" in
  let e = engine c [ a; b2 ] in
  let values = fresh_values c in
  values.(a) <- Logic.Zero;
  (* pins g to 1 *)
  Sim.Ternary_sim.propagate c values;
  Alcotest.(check bool) "conflicting objective fails" true
    (Scanpower.Justify.justify e ~values g Logic.Zero = None);
  (* and the input array is untouched *)
  Alcotest.check logic "input values untouched" Logic.Zero values.(a)

let check_already_satisfied () =
  let c = gadget () in
  let a = Circuit.find c "a" and b2 = Circuit.find c "b" in
  let g = Circuit.find c "g" in
  let e = engine c [ a; b2 ] in
  let values = fresh_values c in
  values.(a) <- Logic.Zero;
  Sim.Ternary_sim.propagate c values;
  match Scanpower.Justify.justify e ~values g Logic.One with
  | None -> Alcotest.fail "already satisfied"
  | Some v -> Alcotest.check logic "g" Logic.One v.(g)

let check_controllable_validation () =
  let c = gadget () in
  let g = Circuit.find c "g" in
  Alcotest.check_raises "gate not controllable"
    (Invalid_argument "Justify.create: controllable node is not a source")
    (fun () -> ignore (engine c [ g ]))

let check_order_candidates_directions () =
  let c = Lazy.force mapped_s27 in
  let obs = Power.Observability.compute c in
  let e_leak =
    Scanpower.Justify.create c
      ~controllable:(Array.to_list (Circuit.sources c))
      ~direction:(Scanpower.Justify.Leakage_directed obs)
  in
  let lines = Array.to_list (Circuit.sources c) in
  let for_one = Scanpower.Justify.order_candidates e_leak ~value:Logic.One lines in
  let for_zero = Scanpower.Justify.order_candidates e_leak ~value:Logic.Zero lines in
  (* setting 1: ascending observability; setting 0: descending *)
  let obs_of id = Power.Observability.observability_na obs id in
  let rec ascending = function
    | a :: (b :: _ as rest) -> obs_of a <= obs_of b +. 1e-12 && ascending rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "ascending for 1" true (ascending for_one);
  Alcotest.(check bool) "descending for 0" true (ascending (List.rev for_zero));
  Alcotest.(check (list int)) "same multiset" (List.sort compare for_one)
    (List.sort compare for_zero)

(* Soundness on a real circuit: whenever justification succeeds, an
   independent re-simulation of the returned controlled-input values
   yields the objective. *)
let prop_justify_sound =
  QCheck.Test.make ~name:"justify soundness on s27" ~count:60
    (QCheck.make QCheck.Gen.(pair (int_range 0 10_000) bool))
    (fun (pick, target_one) ->
      let c = Lazy.force mapped_s27 in
      let controllable = Array.to_list (Circuit.sources c) in
      let e = engine c controllable in
      let gates =
        Array.to_list (Circuit.nodes c)
        |> List.filter (fun nd -> Gate.is_logic nd.Circuit.kind)
      in
      let nd = List.nth gates (pick mod List.length gates) in
      let target = if target_one then Logic.One else Logic.Zero in
      match Scanpower.Justify.justify e ~values:(fresh_values c) nd.Circuit.id target with
      | None -> true
      | Some v ->
        (* re-simulate from scratch with only the source assignments *)
        let check = Sim.Ternary_sim.make_values c Logic.X in
        Array.iter (fun id -> check.(id) <- v.(id)) (Circuit.sources c);
        Sim.Ternary_sim.propagate c check;
        Logic.equal check.(nd.Circuit.id) target)

let suite =
  [
    Alcotest.test_case "simple objective" `Quick check_justify_simple_objective;
    Alcotest.test_case "through inversion" `Quick check_justify_through_inversion;
    Alcotest.test_case "fails without control" `Quick check_justify_fails_without_control;
    Alcotest.test_case "respects existing assignment" `Quick
      check_justify_respects_existing_assignment;
    Alcotest.test_case "already satisfied" `Quick check_already_satisfied;
    Alcotest.test_case "controllable validation" `Quick check_controllable_validation;
    Alcotest.test_case "candidate ordering directions" `Quick
      check_order_candidates_directions;
    QCheck_alcotest.to_alcotest prop_justify_sound;
  ]
