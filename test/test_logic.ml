(* Three- and five-valued logic algebra. *)

open Netlist

let logic = Alcotest.testable Logic.pp Logic.equal

let five = Alcotest.testable Logic.Five.pp Logic.Five.equal

let all3 = [ Logic.Zero; Logic.One; Logic.X ]

let check_not () =
  Alcotest.check logic "not 0" Logic.One (Logic.lnot Logic.Zero);
  Alcotest.check logic "not 1" Logic.Zero (Logic.lnot Logic.One);
  Alcotest.check logic "not X" Logic.X (Logic.lnot Logic.X)

let check_and_table () =
  let ( &&& ) = Logic.( &&& ) in
  Alcotest.check logic "0&&&X" Logic.Zero (Logic.Zero &&& Logic.X);
  Alcotest.check logic "X&&&0" Logic.Zero (Logic.X &&& Logic.Zero);
  Alcotest.check logic "1&&&1" Logic.One (Logic.One &&& Logic.One);
  Alcotest.check logic "1&&&X" Logic.X (Logic.One &&& Logic.X);
  Alcotest.check logic "X&&&X" Logic.X (Logic.X &&& Logic.X)

let check_or_table () =
  let ( ||| ) = Logic.( ||| ) in
  Alcotest.check logic "1|||X" Logic.One (Logic.One ||| Logic.X);
  Alcotest.check logic "X|||1" Logic.One (Logic.X ||| Logic.One);
  Alcotest.check logic "0|||0" Logic.Zero (Logic.Zero ||| Logic.Zero);
  Alcotest.check logic "0|||X" Logic.X (Logic.Zero ||| Logic.X)

let check_xor_table () =
  Alcotest.check logic "0 xor 1" Logic.One (Logic.xor Logic.Zero Logic.One);
  Alcotest.check logic "1 xor 1" Logic.Zero (Logic.xor Logic.One Logic.One);
  Alcotest.check logic "X xor 0" Logic.X (Logic.xor Logic.X Logic.Zero);
  Alcotest.check logic "1 xor X" Logic.X (Logic.xor Logic.One Logic.X)

let check_char_roundtrip () =
  List.iter
    (fun v -> Alcotest.check logic "roundtrip" v (Logic.of_char (Logic.to_char v)))
    all3;
  Alcotest.check_raises "bad char" (Invalid_argument "Logic.of_char: '2'")
    (fun () -> ignore (Logic.of_char '2'))

let check_bool_conversions () =
  Alcotest.check logic "of_bool true" Logic.One (Logic.of_bool true);
  Alcotest.check (Alcotest.option Alcotest.bool) "to_bool X" None
    (Logic.to_bool Logic.X);
  Alcotest.check (Alcotest.option Alcotest.bool) "to_bool 0" (Some false)
    (Logic.to_bool Logic.Zero)

(* Five-valued: D carries good=1/faulty=0; operations must agree with
   applying the ternary operation to both rails independently, up to
   the conservative approximation the five-valued domain forces (a
   mixed pair like good=X/faulty=0 is not representable and collapses
   to X on both rails). *)
let all5 = Logic.Five.[ F0; F1; FX; D; Dbar ]

let rails_ok ~exact ~actual other_exact =
  (* exact result if representable, X otherwise *)
  if Logic.equal exact Logic.X || Logic.equal other_exact Logic.X then
    Logic.equal actual Logic.X || Logic.equal actual exact
  else Logic.equal actual exact

let check_five_rails () =
  let module F = Logic.Five in
  let check name op top =
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            let r = op a b in
            let good_exact = top (F.good a) (F.good b) in
            let faulty_exact = top (F.faulty a) (F.faulty b) in
            Alcotest.(check bool)
              (name ^ " good rail")
              true
              (rails_ok ~exact:good_exact ~actual:(F.good r) faulty_exact);
            Alcotest.(check bool)
              (name ^ " faulty rail")
              true
              (rails_ok ~exact:faulty_exact ~actual:(F.faulty r) good_exact))
          all5)
      all5
  in
  check "and" F.land_ Logic.( &&& );
  check "or" F.lor_ Logic.( ||| );
  check "xor" F.lxor_ Logic.xor

let check_five_exact_on_definite () =
  (* with no X anywhere the rails must be exact *)
  let module F = Logic.Five in
  let definite = F.[ F0; F1; D; Dbar ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.check logic "and good exact"
            Logic.(F.good a &&& F.good b)
            (F.good (F.land_ a b));
          Alcotest.check logic "and faulty exact"
            Logic.(F.faulty a &&& F.faulty b)
            (F.faulty (F.land_ a b));
          Alcotest.check logic "xor faulty exact"
            (Logic.xor (F.faulty a) (F.faulty b))
            (F.faulty (F.lxor_ a b)))
        definite)
    definite

let check_five_not () =
  let module F = Logic.Five in
  Alcotest.check five "not D" F.Dbar (F.lnot F.D);
  Alcotest.check five "not D'" F.D (F.lnot F.Dbar);
  Alcotest.check five "not X" F.FX (F.lnot F.FX)

let check_five_make () =
  let module F = Logic.Five in
  Alcotest.check five "1/0 = D" F.D (F.make ~good:Logic.One ~faulty:Logic.Zero);
  Alcotest.check five "0/1 = D'" F.Dbar (F.make ~good:Logic.Zero ~faulty:Logic.One);
  Alcotest.check five "X/0 = X" F.FX (F.make ~good:Logic.X ~faulty:Logic.Zero)

let check_five_d_detection () =
  let module F = Logic.Five in
  Alcotest.check Alcotest.bool "D" true (F.is_d_or_dbar F.D);
  Alcotest.check Alcotest.bool "F1" false (F.is_d_or_dbar F.F1)

(* Properties: associativity/commutativity of the ternary operators. *)
let gen3 = QCheck.make (QCheck.Gen.oneofl all3)

let prop_and_commutative =
  QCheck.Test.make ~name:"ternary and commutative" ~count:200
    (QCheck.pair gen3 gen3) (fun (a, b) ->
      Logic.equal Logic.(a &&& b) Logic.(b &&& a))

let prop_or_associative =
  QCheck.Test.make ~name:"ternary or associative" ~count:200
    (QCheck.triple gen3 gen3 gen3) (fun (a, b, c) ->
      Logic.equal Logic.(a ||| (b ||| c)) Logic.((a ||| b) ||| c))

let prop_de_morgan =
  QCheck.Test.make ~name:"ternary De Morgan" ~count:200 (QCheck.pair gen3 gen3)
    (fun (a, b) ->
      Logic.equal (Logic.lnot Logic.(a &&& b))
        Logic.(Logic.lnot a ||| Logic.lnot b))

let prop_xor_self =
  QCheck.Test.make ~name:"x xor x is 0 or X" ~count:50 gen3 (fun a ->
      match a with
      | Logic.X -> Logic.equal (Logic.xor a a) Logic.X
      | Logic.Zero | Logic.One -> Logic.equal (Logic.xor a a) Logic.Zero)

let suite =
  [
    Alcotest.test_case "negation" `Quick check_not;
    Alcotest.test_case "conjunction table" `Quick check_and_table;
    Alcotest.test_case "disjunction table" `Quick check_or_table;
    Alcotest.test_case "xor table" `Quick check_xor_table;
    Alcotest.test_case "char roundtrip" `Quick check_char_roundtrip;
    Alcotest.test_case "bool conversions" `Quick check_bool_conversions;
    Alcotest.test_case "five-valued rails" `Quick check_five_rails;
    Alcotest.test_case "five-valued exact on definite" `Quick
      check_five_exact_on_definite;
    Alcotest.test_case "five-valued negation" `Quick check_five_not;
    Alcotest.test_case "five-valued make" `Quick check_five_make;
    Alcotest.test_case "D detection" `Quick check_five_d_detection;
    QCheck_alcotest.to_alcotest prop_and_commutative;
    QCheck_alcotest.to_alcotest prop_or_associative;
    QCheck_alcotest.to_alcotest prop_de_morgan;
    QCheck_alcotest.to_alcotest prop_xor_self;
  ]
