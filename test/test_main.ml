let () =
  Alcotest.run "scanpower"
    [
      ("util", Test_util.suite);
      ("logic", Test_logic.suite);
      ("gate", Test_gate.suite);
      ("circuit", Test_circuit.suite);
      ("bench-format", Test_bench_format.suite);
      ("techlib", Test_techlib.suite);
      ("techmap", Test_techmap.suite);
      ("sim", Test_sim.suite);
      ("packed-sim", Test_packed_sim.suite);
      ("sta", Test_sta.suite);
      ("power", Test_power.suite);
      ("observability", Test_observability.suite);
      ("atpg", Test_atpg.suite);
      ("fault-sim", Test_fault_sim.suite);
      ("scan", Test_scan.suite);
      ("mux-insertion", Test_mux_insertion.suite);
      ("tns", Test_tns.suite);
      ("justify", Test_justify.suite);
      ("controlled-pattern", Test_controlled_pattern.suite);
      ("core", Test_core_rest.suite);
      ("reordering", Test_reordering.suite);
      ("exports", Test_exports.suite);
      ("multi-chain", Test_multi_chain.suite);
      ("bdd", Test_bdd.suite);
      ("glitch", Test_glitch.suite);
      ("d-algorithm", Test_d_algorithm.suite);
      ("scoap", Test_scoap.suite);
      ("circuits", Test_circuits.suite);
      ("telemetry", Test_telemetry.suite);
      ("runner", Test_runner.suite);
      ("errors", Test_errors.suite);
      ("bench-diff", Test_bench_diff.suite);
      ("validate", Test_validate.suite);
      ("server", Test_server.suite);
      ("chaos", Test_chaos.suite);
      ("resilience", Test_resilience.suite);
      (* last on purpose: the par suite spawns domains, and OCaml 5
         permanently refuses Unix.fork in a process once any domain
         has been created — every fork-based suite above (runner,
         server, chaos, resilience) must run before the first
         Domain.spawn. *)
      ("par", Test_par.suite);
    ]
