(* Multiple parallel scan chains: partition validation, shift-cycle
   accounting, response equivalence with the single-chain simulator,
   and the shift-time / activity trade-off. *)

open Netlist

let mapped name = Techmap.Mapper.map (Circuits.by_name name)

let check_partition_shapes () =
  let c = mapped "s382" in
  (* 21 flip-flops *)
  let mc = Scan.Multi_chain.partition c ~chains:4 in
  Alcotest.(check int) "four chains" 4 (Scan.Multi_chain.chain_count mc);
  Alcotest.(check int) "total cells" 21
    (List.fold_left ( + ) 0 (Scan.Multi_chain.chain_lengths mc));
  Alcotest.(check int) "longest chain" 6 (Scan.Multi_chain.shift_cycles_per_vector mc);
  List.iter
    (fun len -> Alcotest.(check bool) "balanced" true (len = 5 || len = 6))
    (Scan.Multi_chain.chain_lengths mc)

let check_partition_validation () =
  let c = mapped "s27" in
  Alcotest.check_raises "zero chains"
    (Invalid_argument "Multi_chain.partition: chains < 1") (fun () ->
      ignore (Scan.Multi_chain.partition c ~chains:0));
  (* more chains than cells: clamped *)
  let mc = Scan.Multi_chain.partition c ~chains:10 in
  Alcotest.(check int) "clamped to n_ff" 3 (Scan.Multi_chain.chain_count mc)

let check_of_orders_validation () =
  let c = mapped "s27" in
  let dffs = Circuit.dffs c in
  let ok = Scan.Multi_chain.of_orders c [ [| dffs.(0); dffs.(1) |]; [| dffs.(2) |] ] in
  Alcotest.(check int) "two chains" 2 (Scan.Multi_chain.chain_count ok);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Multi_chain: flip-flop in two chains") (fun () ->
      ignore (Scan.Multi_chain.of_orders c [ [| dffs.(0) |]; [| dffs.(0); dffs.(1) |] ]));
  Alcotest.check_raises "incomplete"
    (Invalid_argument "Multi_chain: chains do not cover every flip-flop")
    (fun () -> ignore (Scan.Multi_chain.of_orders c [ [| dffs.(0) |] ]))

let check_single_chain_matches_scan_sim () =
  (* one chain in natural order must reproduce Scan_sim exactly *)
  let c = mapped "s382" in
  let vectors = Atpg.Pattern_gen.random_vectors ~seed:3 ~count:15 c in
  let mc = Scan.Multi_chain.of_orders c [ Circuit.dffs c ] in
  let m1 =
    Scan.Multi_chain.measure mc ~policy:Scan.Scan_sim.traditional ~vectors
  in
  let chain = Scan.Scan_chain.natural c in
  let m2 = Scan.Scan_sim.measure c chain Scan.Scan_sim.traditional ~vectors in
  Alcotest.(check int) "same cycles" m2.Scan.Scan_sim.cycles m1.Scan.Multi_chain.cycles;
  Alcotest.(check int) "same toggles" m2.Scan.Scan_sim.total_toggles
    m1.Scan.Multi_chain.total_toggles;
  Alcotest.check (Alcotest.float 1e-9) "same static" m2.Scan.Scan_sim.avg_static_uw
    m1.Scan.Multi_chain.avg_static_uw

let check_responses_independent_of_chain_count () =
  let c = mapped "s382" in
  let vectors = Atpg.Pattern_gen.random_vectors ~seed:5 ~count:12 c in
  let reference =
    Scan.Multi_chain.responses
      (Scan.Multi_chain.of_orders c [ Circuit.dffs c ])
      ~policy:Scan.Scan_sim.traditional ~vectors
  in
  List.iter
    (fun k ->
      let mc = Scan.Multi_chain.partition c ~chains:k in
      Alcotest.(check bool)
        (Printf.sprintf "%d chains capture the same responses" k)
        true
        (Scan.Multi_chain.responses mc ~policy:Scan.Scan_sim.traditional ~vectors
        = reference))
    [ 2; 3; 5; 21 ]

let check_shift_time_scales_down () =
  let c = mapped "s382" in
  let vectors = Atpg.Pattern_gen.random_vectors ~seed:5 ~count:10 c in
  let cycles k =
    (Scan.Multi_chain.measure
       (Scan.Multi_chain.partition c ~chains:k)
       ~policy:Scan.Scan_sim.traditional ~vectors)
      .Scan.Multi_chain.cycles
  in
  let one = cycles 1 and three = cycles 3 and seven = cycles 7 in
  Alcotest.(check bool)
    (Printf.sprintf "%d > %d > %d" one three seven)
    true
    (one > three && three > seven)

let check_policies_work_with_multiple_chains () =
  let c = mapped "s382" in
  let vectors = Atpg.Pattern_gen.random_vectors ~seed:7 ~count:12 c in
  let mc = Scan.Multi_chain.partition c ~chains:3 in
  let trad = Scan.Multi_chain.measure mc ~policy:Scan.Scan_sim.traditional ~vectors in
  let forced =
    Array.to_list (Circuit.dffs c) |> List.map (fun id -> (id, false))
  in
  let quiet =
    Scan.Multi_chain.measure mc
      ~policy:
        {
          Scan.Scan_sim.pi_during_shift =
            Some (Array.make (Array.length (Circuit.inputs c)) false);
          forced_pseudo = forced;
          hold_previous_capture = false;
        }
      ~vectors
  in
  Alcotest.(check bool) "muxing still cuts activity" true
    (quiet.Scan.Multi_chain.total_toggles < trad.Scan.Multi_chain.total_toggles);
  let responses_match =
    Scan.Multi_chain.responses mc ~policy:Scan.Scan_sim.traditional ~vectors
    = Scan.Multi_chain.responses mc
        ~policy:
          {
            Scan.Scan_sim.pi_during_shift = Some (Array.make 3 false);
            forced_pseudo = forced;
            hold_previous_capture = false;
          }
        ~vectors
  in
  Alcotest.(check bool) "responses preserved" true responses_match

(* ---------- test-set file I/O ---------- *)

let check_test_set_roundtrip () =
  let c = mapped "s344" in
  let vectors = Atpg.Pattern_gen.random_vectors ~seed:1 ~count:17 c in
  let text = Atpg.Test_set_io.to_string vectors in
  Alcotest.(check bool) "roundtrip" true
    (Atpg.Test_set_io.of_string c text = vectors)

let check_test_set_comments_and_errors () =
  let c = mapped "s27" in
  (* 7 sources *)
  let ok = Atpg.Test_set_io.of_string c "# header\n1010101\n\n0000000 # tail\n" in
  Alcotest.(check int) "two vectors" 2 (List.length ok);
  Alcotest.(check bool) "width error" true
    (try
       ignore (Atpg.Test_set_io.of_string c "101\n");
       false
     with Atpg.Test_set_io.Parse_error (1, _) -> true);
  Alcotest.(check bool) "character error" true
    (try
       ignore (Atpg.Test_set_io.of_string c "10z0101\n");
       false
     with Atpg.Test_set_io.Parse_error (1, _) -> true)

let suite =
  [
    Alcotest.test_case "partition shapes" `Quick check_partition_shapes;
    Alcotest.test_case "partition validation" `Quick check_partition_validation;
    Alcotest.test_case "of_orders validation" `Quick check_of_orders_validation;
    Alcotest.test_case "single chain matches Scan_sim" `Quick
      check_single_chain_matches_scan_sim;
    Alcotest.test_case "responses independent of chain count" `Quick
      check_responses_independent_of_chain_count;
    Alcotest.test_case "shift time scales down" `Quick check_shift_time_scales_down;
    Alcotest.test_case "policies on multiple chains" `Quick
      check_policies_work_with_multiple_chains;
    Alcotest.test_case "test-set roundtrip" `Quick check_test_set_roundtrip;
    Alcotest.test_case "test-set comments and errors" `Quick
      check_test_set_comments_and_errors;
  ]
