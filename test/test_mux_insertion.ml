(* AddMUX: strategy equivalence, critical-path exclusion, delay
   preservation. *)

open Netlist

let mapped name = Techmap.Mapper.map (Circuits.by_name name)

let check_strategies_agree () =
  List.iter
    (fun name ->
      let c = mapped name in
      let naive = Scanpower.Mux_insertion.select ~strategy:Scanpower.Mux_insertion.Naive c in
      let slack =
        Scanpower.Mux_insertion.select ~strategy:Scanpower.Mux_insertion.Slack_based c
      in
      Alcotest.(check (list int))
        (name ^ " same muxable set")
        (List.sort compare naive.Scanpower.Mux_insertion.muxable)
        (List.sort compare slack.Scanpower.Mux_insertion.muxable))
    [ "s27"; "s344"; "s382" ]

let check_partition_is_complete () =
  let c = mapped "s344" in
  let sel = Scanpower.Mux_insertion.select c in
  let all =
    List.sort compare
      (sel.Scanpower.Mux_insertion.muxable @ sel.Scanpower.Mux_insertion.blocked)
  in
  Alcotest.(check (list int)) "muxable + blocked = dffs"
    (List.sort compare (Array.to_list (Circuit.dffs c)))
    all

let check_muxable_preserve_delay () =
  (* inserting the mux penalty on every muxable cell simultaneously is
     NOT guaranteed (slacks share paths), but each individually is *)
  let c = mapped "s344" in
  let sel = Scanpower.Mux_insertion.select c in
  let base = sel.Scanpower.Mux_insertion.critical_delay_ps in
  List.iter
    (fun dff ->
      let d =
        Sta.delay_with_penalty c
          ~penalties:[ (dff, sel.Scanpower.Mux_insertion.mux_penalty_ps) ]
      in
      Alcotest.(check bool) "unchanged delay" true (d <= base +. 1e-6))
    sel.Scanpower.Mux_insertion.muxable

let check_blocked_would_slow_down () =
  let c = mapped "s344" in
  let sel = Scanpower.Mux_insertion.select c in
  let base = sel.Scanpower.Mux_insertion.critical_delay_ps in
  List.iter
    (fun dff ->
      let d =
        Sta.delay_with_penalty c
          ~penalties:[ (dff, sel.Scanpower.Mux_insertion.mux_penalty_ps) ]
      in
      Alcotest.(check bool) "would slow down" true (d > base +. 1e-6))
    sel.Scanpower.Mux_insertion.blocked

let check_critical_path_cells_blocked () =
  (* a flip-flop that launches the critical path can never take a mux *)
  let c = mapped "s344" in
  let t = Sta.analyze c in
  let path = Sta.critical_path t in
  let sel = Scanpower.Mux_insertion.select c in
  match path with
  | first :: _ when Gate.equal_kind (Circuit.node c first).Circuit.kind Gate.Dff ->
    Alcotest.(check bool) "launching dff blocked" true
      (List.mem first sel.Scanpower.Mux_insertion.blocked)
  | _ -> () (* critical path launches from a primary input *)

let prop_strategies_agree_on_generated =
  QCheck.Test.make ~name:"naive = slack-based on generated circuits" ~count:10
    (QCheck.make QCheck.Gen.(pair (int_range 1 300) (int_range 4 16)))
    (fun (seed, n_ff) ->
      let c =
        Circuits.generate
          { Circuits.name = "mux-prop"; n_pi = 6; n_po = 4; n_ff; n_gates = 100; seed }
      in
      let naive = Scanpower.Mux_insertion.select ~strategy:Scanpower.Mux_insertion.Naive c in
      let slack =
        Scanpower.Mux_insertion.select ~strategy:Scanpower.Mux_insertion.Slack_based c
      in
      List.sort compare naive.Scanpower.Mux_insertion.muxable
      = List.sort compare slack.Scanpower.Mux_insertion.muxable)

let suite =
  [
    Alcotest.test_case "strategies agree" `Quick check_strategies_agree;
    Alcotest.test_case "partition complete" `Quick check_partition_is_complete;
    Alcotest.test_case "muxable preserve delay" `Quick check_muxable_preserve_delay;
    Alcotest.test_case "blocked would slow down" `Quick check_blocked_would_slow_down;
    Alcotest.test_case "critical-path cells blocked" `Quick
      check_critical_path_cells_blocked;
    QCheck_alcotest.to_alcotest prop_strategies_agree_on_generated;
  ]
