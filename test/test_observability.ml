(* Leakage observability (Eq. 6): analytic propagation, hand-computable
   cases, and agreement with the Monte-Carlo estimator. *)

open Netlist

(* Single NAND2 fed by two inputs: the observability of each input is
   exactly E[leak | pin=1] - E[leak | pin=0] under p=0.5 for the other
   pin, straight from the Figure 2 table. *)
let nand2_circuit () =
  let b = Circuit.Builder.create ~name:"nand2" () in
  let a = Circuit.Builder.add_input b "a" in
  let b2 = Circuit.Builder.add_input b "b" in
  let g = Circuit.Builder.add_gate b Gate.Nand "g" [ a; b2 ] in
  let _ = Circuit.Builder.add_output b "po" g in
  Circuit.Builder.build b

let table s =
  Techlib.Leakage_table.leakage_na (Techlib.Cell.Nand 2)
    ~state:(Techlib.Leakage_table.state_of_string s)

let check_nand2_input_observability () =
  let c = nand2_circuit () in
  let obs = Power.Observability.compute c in
  let a = Circuit.find c "a" and b2 = Circuit.find c "b" in
  (* pin a (first fanin, pin 0): states where a=1 are "10","11" *)
  let expect_a =
    (0.5 *. (table "10" +. table "11")) -. (0.5 *. (table "00" +. table "01"))
  in
  let expect_b =
    (0.5 *. (table "01" +. table "11")) -. (0.5 *. (table "00" +. table "10"))
  in
  Alcotest.check (Alcotest.float 1e-6) "a" expect_a
    (Power.Observability.observability_na obs a);
  Alcotest.check (Alcotest.float 1e-6) "b" expect_b
    (Power.Observability.observability_na obs b2)

let check_signal_probabilities () =
  let c = nand2_circuit () in
  let obs = Power.Observability.compute c in
  Alcotest.check (Alcotest.float 1e-9) "input prob" 0.5
    (Power.Observability.probability obs (Circuit.find c "a"));
  (* NAND of two p=0.5 inputs is 1 with probability 3/4 *)
  Alcotest.check (Alcotest.float 1e-9) "nand prob" 0.75
    (Power.Observability.probability obs (Circuit.find c "g"))

let check_probability_with_custom_source () =
  let c = nand2_circuit () in
  let obs = Power.Observability.compute ~p_source:1.0 c in
  Alcotest.check (Alcotest.float 1e-9) "nand of ones is 0" 0.0
    (Power.Observability.probability obs (Circuit.find c "g"))

(* Inverter chain: observability must flow through (the INV table is
   state-dependent, and the driven gate's sensitivity chains back). *)
let inv_chain () =
  let b = Circuit.Builder.create ~name:"chain" () in
  let a = Circuit.Builder.add_input b "a" in
  let i1 = Circuit.Builder.add_gate b Gate.Not "i1" [ a ] in
  let i2 = Circuit.Builder.add_gate b Gate.Not "i2" [ i1 ] in
  let _ = Circuit.Builder.add_output b "po" i2 in
  Circuit.Builder.build b

let inv_table s = Techlib.Leakage_table.leakage_na Techlib.Cell.Inv ~state:s

let check_inverter_chain_observability () =
  let c = inv_chain () in
  let obs = Power.Observability.compute c in
  let d_inv = inv_table 1 -. inv_table 0 in
  (* i1's output drives i2 only: obs(i1) = d(leak_i2)/dp1(i1) *)
  Alcotest.check (Alcotest.float 1e-6) "i1" d_inv
    (Power.Observability.observability_na obs (Circuit.find c "i1"));
  (* a drives i1 whose own leakage rises with p1(a), while p1(i1) falls:
     obs(a) = d_inv - d_inv' where the chained term flips sign *)
  Alcotest.check (Alcotest.float 1e-6) "a" (d_inv -. d_inv)
    (Power.Observability.observability_na obs (Circuit.find c "a"))

let check_monte_carlo_agrees_on_inputs () =
  (* On a fanout-free tree the independence assumption is exact, so
     analytic and Monte-Carlo observabilities must agree closely on
     the primary inputs. *)
  let c = nand2_circuit () in
  let obs = Power.Observability.compute c in
  let mc = Power.Observability.monte_carlo_na ~samples:8000 ~seed:3 c in
  List.iter
    (fun name ->
      let id = Circuit.find c name in
      let a = Power.Observability.observability_na obs id in
      let m = mc.(id) in
      Alcotest.(check bool)
        (Printf.sprintf "%s analytic=%.1f mc=%.1f" name a m)
        true
        (Float.abs (a -. m) < 25.0))
    [ "a"; "b" ]

let check_monte_carlo_nan_for_stuck_lines () =
  (* a NAND2 output driven by nothing variable: feed both pins the same
     input so the output is never 0 under ... actually use a constant
     structure: NAND(a, NOT a) is always 1 *)
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.add_input b "a" in
  let na = Circuit.Builder.add_gate b Gate.Not "na" [ a ] in
  let g = Circuit.Builder.add_gate b Gate.Nand "g" [ a; na ] in
  let _ = Circuit.Builder.add_output b "po" g in
  let c = Circuit.Builder.build b in
  let mc = Power.Observability.monte_carlo_na ~samples:100 ~seed:1 c in
  Alcotest.(check bool) "stuck line is NaN" true (Float.is_nan mc.(g))

let check_observability_directive_consistency () =
  (* end-to-end sanity on a mapped benchmark: observabilities exist for
     every line and are finite *)
  let c = Techmap.Mapper.map (Circuits.s27 ()) in
  let obs = Power.Observability.compute c in
  Array.iter
    (fun nd ->
      let v = Power.Observability.observability_na obs nd.Circuit.id in
      Alcotest.(check bool) "finite" true (Float.is_finite v))
    (Circuit.nodes c)

let check_higher_leakage_pin_has_higher_observability () =
  (* For the NAND2, setting pin1 (B, nearest the output) to 1 moves the
     table from {00,01} to {01,11}? no: B is bit 1 -> states 01,11
     versus 00,10: (73+408)/2 vs (78+264)/2 = 240.5 vs 171 -> positive;
     A: (264+408)/2 vs (78+73)/2 = 336 vs 75.5 -> larger. So pin A has
     the larger observability. *)
  let c = nand2_circuit () in
  let obs = Power.Observability.compute c in
  let oa = Power.Observability.observability_na obs (Circuit.find c "a") in
  let ob = Power.Observability.observability_na obs (Circuit.find c "b") in
  Alcotest.(check bool) "A above B" true (oa > ob);
  Alcotest.(check bool) "both positive" true (oa > 0.0 && ob > 0.0)

let suite =
  [
    Alcotest.test_case "nand2 input observability" `Quick
      check_nand2_input_observability;
    Alcotest.test_case "signal probabilities" `Quick check_signal_probabilities;
    Alcotest.test_case "custom source probability" `Quick
      check_probability_with_custom_source;
    Alcotest.test_case "inverter chain" `Quick check_inverter_chain_observability;
    Alcotest.test_case "monte carlo agrees on inputs" `Quick
      check_monte_carlo_agrees_on_inputs;
    Alcotest.test_case "monte carlo NaN for stuck lines" `Quick
      check_monte_carlo_nan_for_stuck_lines;
    Alcotest.test_case "finite everywhere on s27" `Quick
      check_observability_directive_consistency;
    Alcotest.test_case "pin asymmetry visible" `Quick
      check_higher_leakage_pin_has_higher_observability;
  ]
