(* Compiled circuit form and 64-lane packed scan simulation: structural
   invariants of the CSR arrays, kernel-level cross-validation against
   the scalar evaluators, and golden engine equivalence — the packed
   scan engine must reproduce the event-driven reference exactly
   (toggles, per-cycle series, dynamic power, responses) with static
   power agreeing to float accumulation order. *)

open Netlist

let s27m = lazy (Techmap.Mapper.map (Circuits.s27 ()))
let s344 = lazy (Circuits.by_name "s344")
let s1196 = lazy (Circuits.by_name "s1196")

(* ---------- compiled form ---------- *)

let check_compiled_mirrors_circuit () =
  List.iter
    (fun c ->
      let comp = Compiled.of_circuit c in
      let n = Circuit.node_count c in
      Alcotest.(check int) "node count" n (Compiled.node_count comp);
      let fanin_off = Compiled.fanin_off comp in
      let fanin = Compiled.fanin comp in
      let fanout_off = Compiled.fanout_off comp in
      let fanout = Compiled.fanout comp in
      let opcode = Compiled.opcode comp in
      let levels = Compiled.levels comp in
      Array.iter
        (fun nd ->
          let id = nd.Circuit.id in
          Alcotest.(check int)
            "opcode round-trips" id
            (if
               Gate.equal_kind
                 (Compiled.kind_of_opcode opcode.(id))
                 nd.Circuit.kind
             then id
             else -1);
          Alcotest.(check (array int))
            "fanin slice" nd.Circuit.fanins
            (Array.sub fanin fanin_off.(id) (fanin_off.(id + 1) - fanin_off.(id)));
          Alcotest.(check (array int))
            "fanout slice" nd.Circuit.fanouts
            (Array.sub fanout fanout_off.(id)
               (fanout_off.(id + 1) - fanout_off.(id)));
          Alcotest.(check int) "level" (Circuit.level c id) levels.(id);
          Alcotest.(check bool)
            "source test" (Gate.is_source nd.Circuit.kind)
            (Compiled.is_source comp id))
        (Circuit.nodes c);
      Alcotest.(check (array int))
        "topo order" (Circuit.topo_order c) (Compiled.topo comp);
      let expected_eval =
        Array.of_list
          (List.filter
             (fun id -> not (Gate.is_source (Circuit.node c id).Circuit.kind))
             (Array.to_list (Circuit.topo_order c)))
      in
      Alcotest.(check (array int))
        "eval order" expected_eval (Compiled.eval_order comp))
    [ Lazy.force s27m; Lazy.force s344 ]

let check_eval_bool_matches_gate_eval () =
  let c = Lazy.force s344 in
  let comp = Compiled.of_circuit c in
  let n = Circuit.node_count c in
  let rng = Util.Rng.create 7 in
  let values = Array.make n false in
  for _ = 1 to 20 do
    for i = 0 to n - 1 do
      values.(i) <- Util.Rng.bool rng
    done;
    Array.iter
      (fun nd ->
        if not (Gate.is_source nd.Circuit.kind) then begin
          let expect =
            Gate.eval_bool nd.Circuit.kind
              (Array.map (fun f -> values.(f)) nd.Circuit.fanins)
          in
          if expect <> Compiled.eval_bool comp values nd.Circuit.id then
            Alcotest.failf "eval_bool mismatch at node %d" nd.Circuit.id
        end)
      (Circuit.nodes c)
  done

let check_eval_word_matches_per_lane () =
  let c = Lazy.force s344 in
  let comp = Compiled.of_circuit c in
  let n = Circuit.node_count c in
  let rng = Util.Rng.create 11 in
  let words = Array.make n 0L in
  let lane_values = Array.make n false in
  for _ = 1 to 5 do
    (* random source words, full 64-lane sweep *)
    Array.iter
      (fun id ->
        let w = ref 0L in
        for b = 0 to 63 do
          if Util.Rng.bool rng then w := Int64.logor !w (Int64.shift_left 1L b)
        done;
        words.(id) <- !w)
      (Circuit.sources c);
    Compiled.eval_words comp words;
    for lane = 0 to 63 do
      for i = 0 to n - 1 do
        lane_values.(i) <-
          Int64.logand (Int64.shift_right_logical words.(i) lane) 1L <> 0L
      done;
      Array.iter
        (fun nd ->
          if not (Gate.is_source nd.Circuit.kind) then
            if
              Compiled.eval_bool comp lane_values nd.Circuit.id
              <> lane_values.(nd.Circuit.id)
            then Alcotest.failf "lane %d disagrees at node %d" lane nd.Circuit.id)
        (Circuit.nodes c)
    done
  done

let check_packed_sim_toggle_counting () =
  let c = Lazy.force s27m in
  let comp = Compiled.of_circuit c in
  let ps = Sim.Packed_sim.create comp in
  let words = Sim.Packed_sim.words ps in
  let rng = Util.Rng.create 3 in
  let sources = Circuit.sources c in
  let n = Circuit.node_count c in
  (* reference: scalar per-lane states *)
  let prev = Array.make n false in
  let expected = Array.make n 0 in
  let scalar = Array.make n false in
  let first = ref true in
  for _frame = 1 to 4 do
    let count = 1 + Util.Rng.int rng 64 in
    let lanes = Array.init count (fun _ -> Array.make (Array.length sources) false) in
    Array.iter (fun lane -> Array.iteri (fun i _ -> lane.(i) <- Util.Rng.bool rng) lane) lanes;
    Array.iteri
      (fun pos id ->
        let w = ref 0L in
        for l = 0 to count - 1 do
          if lanes.(l).(pos) then w := Int64.logor !w (Int64.shift_left 1L l)
        done;
        words.(id) <- !w)
      sources;
    Sim.Packed_sim.step ps ~count ~record:true;
    for l = 0 to count - 1 do
      Array.iteri (fun pos id -> scalar.(id) <- lanes.(l).(pos)) sources;
      Array.iter
        (fun id ->
          if not (Gate.is_source (Circuit.node c id).Circuit.kind) then
            scalar.(id) <- Compiled.eval_bool comp scalar id)
        (Circuit.topo_order c);
      for i = 0 to n - 1 do
        if (not !first) && scalar.(i) <> prev.(i) then
          expected.(i) <- expected.(i) + 1
      done;
      (* the packed sim's first-ever lane diffs against last = 0 *)
      if !first then
        for i = 0 to n - 1 do
          if scalar.(i) then expected.(i) <- expected.(i) + 1
        done;
      first := false;
      Array.blit scalar 0 prev 0 n
    done
  done;
  Alcotest.(check (array int))
    "per-node toggles" expected
    (Array.copy (Sim.Packed_sim.toggles ps));
  Alcotest.(check int)
    "total" (Array.fold_left ( + ) 0 expected)
    (Sim.Packed_sim.total_toggles ps)

(* ---------- engine equivalence ---------- *)

let close a b = Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.abs a)

let check_results tag (s : Scan.Scan_sim.result) (p : Scan.Scan_sim.result) =
  Alcotest.(check int) (tag ^ " cycles") s.Scan.Scan_sim.cycles p.Scan.Scan_sim.cycles;
  Alcotest.(check int)
    (tag ^ " shift cycles")
    s.Scan.Scan_sim.shift_cycles p.Scan.Scan_sim.shift_cycles;
  Alcotest.(check (array int))
    (tag ^ " per-node toggles")
    s.Scan.Scan_sim.toggles p.Scan.Scan_sim.toggles;
  Alcotest.(check int)
    (tag ^ " total toggles")
    s.Scan.Scan_sim.total_toggles p.Scan.Scan_sim.total_toggles;
  Alcotest.(check (array int))
    (tag ^ " per-cycle toggles")
    s.Scan.Scan_sim.per_cycle_toggles p.Scan.Scan_sim.per_cycle_toggles;
  (* dynamic power is a pure function of toggles and cycles: exact *)
  Alcotest.(check bool)
    (tag ^ " dynamic identical")
    true
    (s.Scan.Scan_sim.dynamic = p.Scan.Scan_sim.dynamic);
  (* statics agree to accumulation order *)
  List.iter
    (fun (what, a, b) ->
      if not (close a b) then
        Alcotest.failf "%s %s: scalar %.17g vs packed %.17g" tag what a b)
    [
      ("avg static", s.Scan.Scan_sim.avg_static_uw, p.Scan.Scan_sim.avg_static_uw);
      ("peak static", s.Scan.Scan_sim.peak_static_uw, p.Scan.Scan_sim.peak_static_uw);
      ( "avg capture static",
        s.Scan.Scan_sim.avg_capture_static_uw,
        p.Scan.Scan_sim.avg_capture_static_uw );
    ]

let random_vectors rng c n =
  let len = Array.length (Circuit.sources c) in
  List.init n (fun _ -> Array.init len (fun _ -> Util.Rng.bool rng))

let policies c rng =
  let n_pi = Array.length (Circuit.inputs c) in
  let dffs = Circuit.dffs c in
  let forced =
    Array.to_list dffs
    |> List.filteri (fun i _ -> i mod 3 = 0)
    |> List.map (fun id -> (id, Util.Rng.bool rng))
  in
  [
    ("traditional", Scan.Scan_sim.traditional);
    ("enhanced", Scan.Scan_sim.enhanced_scan);
    ( "input-control",
      {
        Scan.Scan_sim.pi_during_shift =
          Some (Array.init n_pi (fun _ -> Util.Rng.bool rng));
        forced_pseudo = [];
        hold_previous_capture = false;
      } );
    ( "forced-pseudo",
      {
        Scan.Scan_sim.pi_during_shift =
          Some (Array.init n_pi (fun _ -> Util.Rng.bool rng));
        forced_pseudo = forced;
        hold_previous_capture = false;
      } );
  ]

let check_engines_agree_on ?(widths = [ 4; 8 ]) name circuit ~seed ~n_vectors =
  let c = circuit in
  let chain = Scan.Scan_chain.natural c in
  let rng = Util.Rng.create seed in
  let vectors = random_vectors rng c n_vectors in
  let init_state =
    Array.init (Scan.Scan_chain.length chain) (fun _ -> Util.Rng.bool rng)
  in
  List.iter
    (fun (tag, policy) ->
      let tag = Printf.sprintf "%s/%s/seed%d" name tag seed in
      let s =
        Scan.Scan_sim.measure ~engine:Scan.Scan_sim.Scalar ~init_state c chain
          policy ~vectors
      in
      let p =
        Scan.Scan_sim.measure ~engine:Scan.Scan_sim.Packed ~init_state c chain
          policy ~vectors
      in
      check_results tag s p;
      (* W-word batches: every width is bit-identical to the scalar
         reference (and hence to W=1) *)
      List.iter
        (fun width ->
          let pw =
            Scan.Scan_sim.measure ~engine:Scan.Scan_sim.Packed ~width
              ~init_state c chain policy ~vectors
          in
          check_results (Printf.sprintf "%s/w%d" tag width) s pw)
        widths;
      let rs =
        Scan.Scan_sim.responses ~engine:Scan.Scan_sim.Scalar ~init_state c
          chain policy ~vectors
      in
      let rp =
        Scan.Scan_sim.responses ~engine:Scan.Scan_sim.Packed ~init_state c
          chain policy ~vectors
      in
      Alcotest.(check (list (array bool))) (tag ^ " responses") rs rp;
      List.iter
        (fun width ->
          let rw =
            Scan.Scan_sim.responses ~engine:Scan.Scan_sim.Packed ~width
              ~init_state c chain policy ~vectors
          in
          Alcotest.(check (list (array bool)))
            (Printf.sprintf "%s/w%d responses" tag width)
            rs rw)
        widths)
    (policies c rng)

let check_golden_s344 () =
  check_engines_agree_on "s344" (Lazy.force s344) ~seed:1 ~n_vectors:12;
  check_engines_agree_on "s344" (Lazy.force s344) ~seed:2 ~n_vectors:7

let check_golden_s1196 () =
  check_engines_agree_on "s1196" (Lazy.force s1196) ~seed:3 ~n_vectors:6

let check_golden_s27 () =
  (* chain shorter than a word: every segment fits one frame *)
  check_engines_agree_on "s27" (Lazy.force s27m) ~seed:4 ~n_vectors:20;
  check_engines_agree_on "s27" (Lazy.force s27m) ~seed:5 ~n_vectors:1

let check_empty_vectors () =
  let c = Lazy.force s344 in
  let chain = Scan.Scan_chain.natural c in
  let s =
    Scan.Scan_sim.measure ~engine:Scan.Scan_sim.Scalar c chain
      Scan.Scan_sim.traditional ~vectors:[]
  in
  let p =
    Scan.Scan_sim.measure ~engine:Scan.Scan_sim.Packed c chain
      Scan.Scan_sim.traditional ~vectors:[]
  in
  check_results "empty" s p;
  Alcotest.(check int) "no cycles beyond floor" 1 p.Scan.Scan_sim.cycles;
  Alcotest.(check int) "no toggles" 0 p.Scan.Scan_sim.total_toggles

let check_validation_parity () =
  let c = Lazy.force s344 in
  let chain = Scan.Scan_chain.natural c in
  let bad_vec = [ Array.make 3 false ] in
  List.iter
    (fun engine ->
      Alcotest.check_raises "vector length"
        (Invalid_argument "Scan_sim: vector length mismatch") (fun () ->
          ignore
            (Scan.Scan_sim.measure ~engine c chain Scan.Scan_sim.traditional
               ~vectors:bad_vec));
      Alcotest.check_raises "forced non-dff"
        (Invalid_argument "Scan_sim: forced node is not a flip-flop")
        (fun () ->
          let policy =
            {
              Scan.Scan_sim.pi_during_shift = None;
              forced_pseudo = [ ((Circuit.inputs c).(0), true) ];
              hold_previous_capture = false;
            }
          in
          ignore (Scan.Scan_sim.measure ~engine c chain policy ~vectors:[])))
    [ Scan.Scan_sim.Scalar; Scan.Scan_sim.Packed ]

(* Property: on random generated circuits (mapped by construction) the
   two engines agree for random vector sets and random policies. *)
let prop_engines_agree =
  QCheck.Test.make ~name:"packed engine equals scalar engine" ~count:12
    (QCheck.make
       QCheck.Gen.(
         triple (int_range 0 10000) (int_range 1 5) (int_range 10 60)))
    (fun (seed, n_vectors, n_gates) ->
      let profile =
        {
          Circuits.name = Printf.sprintf "prop%d" seed;
          n_pi = 3 + (seed mod 4);
          n_po = 2;
          n_ff = 2 + (seed mod 5);
          n_gates;
          seed;
        }
      in
      let c = Circuits.generate profile in
      (* one random batch width per case keeps the property cheap while
         covering the whole 1..8 range (odd widths included) across runs *)
      check_engines_agree_on ~widths:[ 1 + (seed mod 8) ]
        profile.Circuits.name c ~seed ~n_vectors;
      true)

(* ---------- automatic width selection ---------- *)

(* [auto_width] must pick just enough 64-lane words to hold one shift
   segment (1 launch + chain + 1 capture lane), capped at the packed
   engine's [max_width]; omitting [~width] must then be bit-identical
   to passing the chosen value explicitly. *)
let check_auto_width () =
  let expect name c w =
    let chain = Scan.Scan_chain.natural c in
    let lanes = 1 + Scan.Scan_chain.length chain + 1 in
    Alcotest.(check int)
      (Printf.sprintf "%s (%d lanes) auto width" name lanes)
      w
      (Scan.Scan_sim.auto_width chain)
  in
  (* short chains fit one word; s1423's 74 flip-flops need two; the
     512-FF scale chain saturates at the cap *)
  expect "s27" (Lazy.force s27m) 1;
  expect "s344" (Lazy.force s344) 1;
  expect "s1423" (Circuits.by_name "s1423") 2;
  expect "g50k" (Circuits.by_name "g50k") Sim.Packed_sim.max_width;
  let c = Circuits.by_name "s1423" in
  let chain = Scan.Scan_chain.natural c in
  let rng = Util.Rng.create 6 in
  let vectors = random_vectors rng c 5 in
  let auto =
    Scan.Scan_sim.measure ~engine:Scan.Scan_sim.Packed c chain
      Scan.Scan_sim.traditional ~vectors
  in
  let explicit =
    Scan.Scan_sim.measure ~engine:Scan.Scan_sim.Packed
      ~width:(Scan.Scan_sim.auto_width chain)
      c chain Scan.Scan_sim.traditional ~vectors
  in
  check_results "auto = explicit" explicit auto;
  let scalar =
    Scan.Scan_sim.measure ~engine:Scan.Scan_sim.Scalar c chain
      Scan.Scan_sim.traditional ~vectors
  in
  check_results "auto = scalar" scalar auto;
  let r_auto =
    Scan.Scan_sim.responses ~engine:Scan.Scan_sim.Packed c chain
      Scan.Scan_sim.traditional ~vectors
  in
  let r_scalar =
    Scan.Scan_sim.responses ~engine:Scan.Scan_sim.Scalar c chain
      Scan.Scan_sim.traditional ~vectors
  in
  List.iter2
    (fun a b -> Alcotest.(check (array bool)) "auto responses" a b)
    r_scalar r_auto

let suite =
  [
    Alcotest.test_case "compiled mirrors circuit" `Quick
      check_compiled_mirrors_circuit;
    Alcotest.test_case "eval_bool equals gate eval" `Quick
      check_eval_bool_matches_gate_eval;
    Alcotest.test_case "eval_word equals per-lane eval" `Quick
      check_eval_word_matches_per_lane;
    Alcotest.test_case "packed toggle counting" `Quick
      check_packed_sim_toggle_counting;
    Alcotest.test_case "golden equivalence s344" `Quick check_golden_s344;
    Alcotest.test_case "golden equivalence s1196" `Quick check_golden_s1196;
    Alcotest.test_case "golden equivalence s27" `Quick check_golden_s27;
    Alcotest.test_case "automatic width selection" `Quick check_auto_width;
    Alcotest.test_case "empty vector list" `Quick check_empty_vectors;
    Alcotest.test_case "validation parity" `Quick check_validation_parity;
    QCheck_alcotest.to_alcotest prop_engines_agree;
  ]
