(* The domain pool and everything built on it. The contract under test
   is determinism: whatever the domain count, the sharded fault
   simulation and the Domains runner strategy must produce outputs
   bit-identical to the sequential walk — the pool only changes who
   computes, never what. SCANPOWER_TEST_DOMAINS adds extra pool sizes
   (comma-separated) so CI can probe 2- and 4-domain schedules
   explicitly. *)

open Netlist
module Fs = Atpg.Fault_simulation
module Pool = Par.Domain_pool

let s27m = lazy (Techmap.Mapper.map (Circuits.s27 ()))
let s344 = lazy (Circuits.by_name "s344")
let s1196 = lazy (Circuits.by_name "s1196")

let pool_sizes =
  let base = [ 1; 2; 4 ] in
  match Sys.getenv_opt "SCANPOWER_TEST_DOMAINS" with
  | None | Some "" -> base
  | Some s ->
    base
    @ (String.split_on_char ',' s
      |> List.filter_map (fun x -> int_of_string_opt (String.trim x))
      |> List.filter (fun d -> d >= 1 && not (List.mem d base)))

let random_vectors rng c n =
  let len = Array.length (Circuit.sources c) in
  List.init n (fun _ -> Array.init len (fun _ -> Util.Rng.bool rng))

(* ---------- the pool itself ---------- *)

let test_parallel_for_covers () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let n = 1000 in
          let hits = Array.make n 0 in
          Pool.parallel_for pool ~n (fun i -> hits.(i) <- hits.(i) + (i + 1));
          Array.iteri
            (fun i h ->
              Alcotest.(check int)
                (Printf.sprintf "d%d index %d once" domains i)
                (i + 1) h)
            hits))
    pool_sizes

let test_parallel_for_empty_and_tiny () =
  Pool.with_pool ~domains:4 (fun pool ->
      Pool.parallel_for pool ~n:0 (fun _ -> Alcotest.fail "body on n=0");
      let hit = ref false in
      Pool.parallel_for pool ~n:1 (fun i ->
          Alcotest.(check int) "only index" 0 i;
          hit := true);
      Alcotest.(check bool) "n=1 ran" true !hit)

let test_exception_propagates () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let raised =
            try
              Pool.parallel_for pool ~chunk:1 ~n:64 (fun i ->
                  if i = 37 then failwith "boom");
              false
            with Failure m -> m = "boom"
          in
          Alcotest.(check bool)
            (Printf.sprintf "d%d re-raises" domains)
            true raised;
          (* the pool must stay usable after an exceptional round *)
          let total = Atomic.make 0 in
          Pool.parallel_for pool ~n:100 (fun i ->
              ignore (Atomic.fetch_and_add total i));
          Alcotest.(check int)
            (Printf.sprintf "d%d usable after raise" domains)
            4950 (Atomic.get total)))
    pool_sizes

let test_participant_indices () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let size = Pool.size pool in
          Alcotest.(check bool)
            "size within request" true
            (size >= 1 && size <= max domains 1);
          let n = 256 in
          let who = Array.make n (-1) in
          Pool.parallel_for_p pool ~chunk:1 ~n (fun ~participant i ->
              who.(i) <- participant);
          Array.iteri
            (fun i p ->
              Alcotest.(check bool)
                (Printf.sprintf "d%d index %d owned" domains i)
                true
                (p >= 0 && p < size))
            who;
          Alcotest.(check bool)
            "steal_count non-negative" true
            (Pool.steal_count pool >= 0)))
    pool_sizes

(* ---------- sharded fault simulation ---------- *)

(* One circuit, one seed: the Cone reference, the sequential CPT and
   PPSFP walks and the pool-sharded CPT/PPSFP walks at every pool size
   must agree fault-for-fault, in order. [~par_threshold:0] everywhere:
   the test circuits sit below the min-work cutoff, and the property
   under test is the sharded walk itself, not the bypass. *)
let check_sharded_split tag c ~seed ~n_vectors =
  let faults = Atpg.Fault.collapsed_faults c in
  let rng = Util.Rng.create seed in
  let vectors = random_vectors rng c n_vectors in
  let m_cone = Fs.make ~engine:Fs.Cone c in
  let det_ref, undet_ref = Fs.split ~machine:m_cone c ~faults ~vectors in
  let m = Fs.make c in
  let det_seq, undet_seq = Fs.split ~machine:m c ~faults ~vectors in
  let m_pp = Fs.make ~engine:Fs.Ppsfp c in
  let show l = String.concat ";" (List.map (Atpg.Fault.to_string c) l) in
  Alcotest.(check string)
    (tag ^ " sequential cpt = cone")
    (show det_ref) (show det_seq);
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let det_p, undet_p =
            Fs.split ~machine:m ~pool ~par_threshold:0 c ~faults ~vectors
          in
          Alcotest.(check string)
            (Printf.sprintf "%s detected d%d" tag domains)
            (show det_seq) (show det_p);
          Alcotest.(check string)
            (Printf.sprintf "%s undetected d%d" tag domains)
            (show undet_seq) (show undet_p);
          Alcotest.(check string)
            (Printf.sprintf "%s vs cone undetected d%d" tag domains)
            (show undet_ref) (show undet_p);
          let det_pp, undet_pp =
            Fs.split ~machine:m_pp ~pool ~par_threshold:0 c ~faults ~vectors
          in
          Alcotest.(check string)
            (Printf.sprintf "%s ppsfp detected d%d" tag domains)
            (show det_ref) (show det_pp);
          Alcotest.(check string)
            (Printf.sprintf "%s ppsfp undetected d%d" tag domains)
            (show undet_ref) (show undet_pp)))
    pool_sizes

let test_sharded_s27 () =
  check_sharded_split "s27/seed1" (Lazy.force s27m) ~seed:1 ~n_vectors:80;
  check_sharded_split "s27/seed2" (Lazy.force s27m) ~seed:2 ~n_vectors:5

let test_sharded_s344 () =
  check_sharded_split "s344/seed3" (Lazy.force s344) ~seed:3 ~n_vectors:70

let test_sharded_s1196 () =
  check_sharded_split "s1196/seed5" (Lazy.force s1196) ~seed:5 ~n_vectors:40

let test_sharded_coverage_and_subset () =
  let c = Lazy.force s344 in
  let faults = Atpg.Fault.collapsed_faults c in
  let rng = Util.Rng.create 11 in
  let vectors = random_vectors rng c 60 in
  let m = Fs.make c in
  let cov_seq = Fs.coverage ~machine:m c ~faults ~vectors in
  let sub_seq = Fs.effective_subset ~machine:m c ~faults ~vectors in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let cov_p =
            Fs.coverage ~machine:m ~pool ~par_threshold:0 c ~faults ~vectors
          in
          Alcotest.(check (float 0.0))
            (Printf.sprintf "coverage d%d" domains)
            cov_seq cov_p;
          let sub_p =
            Fs.effective_subset ~machine:m ~pool ~par_threshold:0 c ~faults
              ~vectors
          in
          Alcotest.(check int)
            (Printf.sprintf "subset size d%d" domains)
            (List.length sub_seq) (List.length sub_p);
          List.iter2
            (fun a b ->
              Alcotest.(check bool)
                (Printf.sprintf "subset vector d%d" domains)
                true (a = b))
            sub_seq sub_p))
    pool_sizes

(* Below the min-work threshold a pool-bearing call must bypass the
   pool entirely — identical results, and the bypass counter tallies
   the decision. Every test circuit is far below the default 1024
   compiled nodes, so the default threshold exercises the bypass. *)
let test_par_threshold_bypass () =
  let c = Lazy.force s344 in
  let faults = Atpg.Fault.collapsed_faults c in
  let rng = Util.Rng.create 13 in
  let vectors = random_vectors rng c 50 in
  let m = Fs.make c in
  let det_seq, undet_seq = Fs.split ~machine:m c ~faults ~vectors in
  let was_enabled = Telemetry.enabled () in
  Telemetry.reset ();
  Telemetry.enable ();
  let get name = Option.value ~default:0 (Telemetry.Counter.find name) in
  Pool.with_pool ~domains:2 (fun pool ->
      let before = get "atpg.fault_sim.par_bypass" in
      let det_p, undet_p = Fs.split ~machine:m ~pool c ~faults ~vectors in
      let after = get "atpg.fault_sim.par_bypass" in
      ignore (Fs.split ~machine:m ~pool ~par_threshold:0 c ~faults ~vectors);
      let after_forced = get "atpg.fault_sim.par_bypass" in
      Telemetry.reset ();
      if not was_enabled then Telemetry.disable ();
      Alcotest.(check bool) "bypass counter advanced" true (after > before);
      Alcotest.(check int)
        "bypassed detected = sequential"
        (List.length det_seq) (List.length det_p);
      Alcotest.(check int)
        "bypassed undetected = sequential"
        (List.length undet_seq) (List.length undet_p);
      Alcotest.(check int) "par_threshold:0 forces sharding" after after_forced)

(* fork_machine shares the compiled form but owns its scratch: running
   a replica must not disturb the parent mid-round *)
let test_fork_machine_isolated () =
  let c = Lazy.force s27m in
  let faults = Atpg.Fault.collapsed_faults c in
  let rng = Util.Rng.create 7 in
  let vectors = random_vectors rng c 30 in
  let m = Fs.make c in
  let det0, _ = Fs.split ~machine:m c ~faults ~vectors in
  let replica = Fs.fork_machine m in
  ignore (Fs.split ~machine:replica c ~faults ~vectors);
  let det1, _ = Fs.split ~machine:m c ~faults ~vectors in
  Alcotest.(check int)
    "parent unchanged after replica ran"
    (List.length det0) (List.length det1)

(* ---------- the runner's Domains strategy ---------- *)

let job_of i =
  {
    Runner.id = Printf.sprintf "job%d" i;
    cache_key = None;
    run =
      (fun ~attempt:_ ->
        if i = 5 then failwith "job five always fails"
        else Telemetry.Json.Int (i * i));
  }

let values_of results =
  List.map
    (fun r ->
      match r.Runner.outcome with
      | Runner.Done { value; _ } -> Ok value
      | Runner.Failed { last; _ } -> Error (Runner.failure_to_string last))
    results

(* The Auto runner strategy must not spin up domains for a batch
   smaller than min_domain_jobs: same outcomes, sequential path,
   decision tallied. An explicit Domains request is always honored. *)
let test_runner_auto_min_work () =
  let was_enabled = Telemetry.enabled () in
  Telemetry.reset ();
  Telemetry.enable ();
  let get () =
    Option.value ~default:0 (Telemetry.Counter.find "runner.min_work_seq")
  in
  let cfg =
    { Runner.default_config with jobs = 4; strategy = Runner.Auto }
  in
  let jobs n = List.init n (fun i -> job_of (i + 100)) in
  let res_small, _ = Runner.run ~config:cfg (jobs (cfg.Runner.min_domain_jobs - 1)) in
  let after_small = get () in
  let seq, _ =
    Runner.run
      ~config:{ cfg with jobs = 1 }
      (jobs (cfg.Runner.min_domain_jobs - 1))
  in
  let after_seq = get () in
  ignore (Runner.run ~config:cfg (jobs (cfg.Runner.min_domain_jobs + 2)));
  let after_big = get () in
  ignore
    (Runner.run ~config:{ cfg with strategy = Runner.Domains } (jobs 2));
  let after_explicit = get () in
  Telemetry.reset ();
  if not was_enabled then Telemetry.disable ();
  Alcotest.(check bool) "small Auto batch went sequential" true (after_small > 0);
  Alcotest.(check bool)
    "small batch outcomes = sequential" true
    (values_of seq = values_of res_small);
  Alcotest.(check int)
    "jobs=1 config is not the Domains path" after_small after_seq;
  Alcotest.(check int) "big Auto batch not bypassed" after_seq after_big;
  Alcotest.(check int)
    "explicit Domains honored for tiny batch" after_big after_explicit

let test_runner_domains_matches_sequential () =
  let jobs () = List.init 12 job_of in
  let seq, seq_stats =
    Runner.run ~config:{ Runner.default_config with jobs = 1 } (jobs ())
  in
  let dom, dom_stats =
    Runner.run
      ~config:
        { Runner.default_config with jobs = 4; strategy = Runner.Domains }
      (jobs ())
  in
  Alcotest.(check bool)
    "same outcomes" true
    (values_of seq = values_of dom);
  Alcotest.(check int) "computed" seq_stats.Runner.computed
    dom_stats.Runner.computed;
  Alcotest.(check int) "failed" seq_stats.Runner.failed
    dom_stats.Runner.failed

let test_runner_domains_retries () =
  (* a job that fails on attempt 1 and succeeds on attempt 2 must be
     retried on the domains path exactly as on the others *)
  let job =
    {
      Runner.id = "flaky";
      cache_key = None;
      run =
        (fun ~attempt ->
          if attempt < 2 then failwith "first attempt fails"
          else Telemetry.Json.Int attempt);
    }
  in
  let results, stats =
    Runner.run
      ~config:
        {
          Runner.default_config with
          jobs = 2;
          strategy = Runner.Domains;
          retries = 2;
        }
      [ job ]
  in
  (match values_of results with
  | [ Ok (Telemetry.Json.Int 2) ] -> ()
  | _ -> Alcotest.fail "flaky job did not succeed on retry");
  Alcotest.(check int) "one retry" 1 stats.Runner.retries

let test_effective_strategy () =
  let base =
    { Runner.default_config with jobs = 4; strategy = Runner.Auto }
  in
  let check name expect cfg =
    Alcotest.(check string)
      name
      (Runner.strategy_to_string expect)
      (Runner.strategy_to_string (Runner.effective_strategy cfg))
  in
  check "plain batch -> domains" Runner.Domains base;
  check "timeout -> processes" Runner.Processes
    { base with timeout_s = 1.0 };
  check "capture -> processes" Runner.Processes
    { base with capture_telemetry = true };
  check "signals -> processes" Runner.Processes
    { base with handle_signals = true };
  check "explicit domains" Runner.Domains
    { base with strategy = Runner.Domains; timeout_s = 1.0 };
  check "explicit processes" Runner.Processes
    { base with strategy = Runner.Processes }

let test_strategy_strings () =
  List.iter
    (fun s ->
      match Runner.strategy_of_string (Runner.strategy_to_string s) with
      | Some s' ->
        Alcotest.(check string)
          "round trip"
          (Runner.strategy_to_string s)
          (Runner.strategy_to_string s')
      | None -> Alcotest.fail "round trip parse failed")
    [ Runner.Processes; Runner.Domains; Runner.Auto ];
  Alcotest.(check bool)
    "unknown rejected" true
    (Runner.strategy_of_string "threads" = None)

(* ---------- sweep over domains ---------- *)

let test_sweep_domains_bit_identical () =
  let points = Scanpower.Sweep.points ~seeds:[ 42 ] [ Circuits.s27 () ] in
  let seq = Scanpower.Sweep.run ~jobs:1 ~capture_telemetry:false points in
  let dom =
    Scanpower.Sweep.run ~jobs:2 ~parallel:Runner.Domains points
  in
  let comparisons report =
    List.map
      (fun jr ->
        match jr.Scanpower.Sweep.comparison with
        | Ok c -> Telemetry.Json.to_string (Scanpower.Sweep.comparison_to_json c)
        | Error m -> "error:" ^ m)
      report.Scanpower.Sweep.results
  in
  Alcotest.(check (list string))
    "domains sweep = sequential sweep" (comparisons seq) (comparisons dom)

(* ---------- the fork ratchet ---------- *)

(* This test depends on running after the pool tests above have
   spawned a domain (the par suite is last in test_main for the same
   reason): OCaml 5 now forbids Unix.fork in this process, so a
   dispatcher told to fork must notice and re-route onto a domain
   instead of dying at the syscall. *)
let test_dispatcher_fork_fallback () =
  Par.Domain_pool.with_pool ~domains:2 (fun _ -> ());
  Alcotest.(check bool)
    "fork is unavailable by now" true
    (Par.Domain_pool.fork_unavailable ());
  let module D = Scanpower_server.Dispatcher in
  let module P = Scanpower_server.Protocol in
  let t = D.create ~parallel:Runner.Processes () in
  let req =
    {
      P.id = "r1";
      kind = P.Validate;
      circuit = Some (P.Named "s27");
      seed = 42;
      engine = None;
      deadline_s = None;
      stream = false;
      isolation = P.Fork_isolation;
      idem = None;
    }
  in
  (match D.handle t req with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "fallback request failed: %s"
      (Scanpower_errors.to_string e));
  match D.handle t { req with P.id = "r2"; kind = P.Stats; circuit = None }
  with
  | Ok stats -> (
    match Telemetry.Json.member "parallel" stats with
    | Some p -> (
      match Telemetry.Json.member "fork_fallbacks" p with
      | Some (Telemetry.Json.Int n) ->
        Alcotest.(check bool) "fallback tallied" true (n >= 1)
      | _ -> Alcotest.fail "fork_fallbacks missing from stats")
    | None -> Alcotest.fail "parallel block missing from stats")
  | Error e ->
    Alcotest.failf "stats failed: %s" (Scanpower_errors.to_string e)

let suite =
  [
    Alcotest.test_case "parallel_for covers every index" `Quick
      test_parallel_for_covers;
    Alcotest.test_case "parallel_for n=0 and n=1" `Quick
      test_parallel_for_empty_and_tiny;
    Alcotest.test_case "exception propagates, pool reusable" `Quick
      test_exception_propagates;
    Alcotest.test_case "participant indices well-formed" `Quick
      test_participant_indices;
    Alcotest.test_case "sharded split s27 = sequential = cone" `Quick
      test_sharded_s27;
    Alcotest.test_case "sharded split s344" `Quick test_sharded_s344;
    Alcotest.test_case "sharded split s1196" `Slow test_sharded_s1196;
    Alcotest.test_case "sharded coverage and effective_subset" `Quick
      test_sharded_coverage_and_subset;
    Alcotest.test_case "min-work threshold bypasses the pool" `Quick
      test_par_threshold_bypass;
    Alcotest.test_case "fork_machine leaves parent intact" `Quick
      test_fork_machine_isolated;
    Alcotest.test_case "runner auto min-work goes sequential" `Quick
      test_runner_auto_min_work;
    Alcotest.test_case "runner domains = sequential outcomes" `Quick
      test_runner_domains_matches_sequential;
    Alcotest.test_case "runner domains retries" `Quick
      test_runner_domains_retries;
    Alcotest.test_case "auto strategy resolution" `Quick
      test_effective_strategy;
    Alcotest.test_case "strategy string round trip" `Quick
      test_strategy_strings;
    Alcotest.test_case "sweep over domains bit-identical" `Slow
      test_sweep_domains_bit_identical;
    Alcotest.test_case "dispatcher falls back when fork is poisoned" `Quick
      test_dispatcher_fork_fallback;
  ]
