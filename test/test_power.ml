(* Dynamic (Eq. 1) and static (Eq. 5) power models. *)

open Netlist

let mapped_s27 = lazy (Techmap.Mapper.map (Circuits.s27 ()))

let bool_values c f = Array.init (Circuit.node_count c) f

let settled c ~sources =
  let values = Array.make (Circuit.node_count c) false in
  Array.iter (fun id -> values.(id) <- sources id) (Circuit.sources c);
  Array.iter
    (fun id ->
      let nd = Circuit.node c id in
      if not (Gate.is_source nd.kind) then
        values.(id) <-
          Gate.eval_bool nd.kind (Array.map (fun f -> values.(f)) nd.fanins))
    (Circuit.topo_order c);
  values

let check_switching_zero_for_no_toggles () =
  let c = Lazy.force mapped_s27 in
  let toggles = Array.make (Circuit.node_count c) 0 in
  let r = Power.Switching.of_toggles c ~toggles ~cycles:10 in
  Alcotest.check (Alcotest.float 1e-12) "zero" 0.0 r.Power.Switching.dynamic_per_hz_uw;
  Alcotest.(check int) "no toggles" 0 r.Power.Switching.total_toggles

let check_switching_scales_linearly () =
  let c = Lazy.force mapped_s27 in
  let toggles = Array.make (Circuit.node_count c) 2 in
  let base = Power.Switching.of_toggles c ~toggles ~cycles:10 in
  let double = Array.make (Circuit.node_count c) 4 in
  let twice = Power.Switching.of_toggles c ~toggles:double ~cycles:10 in
  Alcotest.check (Alcotest.float 1e-12) "linear in activity"
    (2.0 *. base.Power.Switching.dynamic_per_hz_uw)
    twice.Power.Switching.dynamic_per_hz_uw;
  (* doubling the observation window halves the per-cycle figure *)
  let longer = Power.Switching.of_toggles c ~toggles ~cycles:20 in
  Alcotest.check (Alcotest.float 1e-12) "inverse in cycles"
    (base.Power.Switching.dynamic_per_hz_uw /. 2.0)
    longer.Power.Switching.dynamic_per_hz_uw

let check_switching_validation () =
  let c = Lazy.force mapped_s27 in
  Alcotest.check_raises "cycles" (Invalid_argument "Switching.of_toggles: cycles <= 0")
    (fun () ->
      ignore
        (Power.Switching.of_toggles c
           ~toggles:(Array.make (Circuit.node_count c) 0)
           ~cycles:0));
  Alcotest.check_raises "length"
    (Invalid_argument "Switching.of_toggles: toggle array length mismatch")
    (fun () -> ignore (Power.Switching.of_toggles c ~toggles:[| 1 |] ~cycles:1))

let check_output_markers_cost_nothing () =
  let c = Lazy.force mapped_s27 in
  Array.iter
    (fun id ->
      Alcotest.check (Alcotest.float 1e-12) "marker cap" 0.0
        (Power.Switching.switched_cap c id))
    (Circuit.outputs c)

let check_leakage_positive_and_state_dependent () =
  let c = Lazy.force mapped_s27 in
  let v0 = settled c ~sources:(fun _ -> false) in
  let v1 = settled c ~sources:(fun _ -> true) in
  let l0 = Power.Leakage.total_leakage_uw c v0 in
  let l1 = Power.Leakage.total_leakage_uw c v1 in
  Alcotest.(check bool) "positive" true (l0 > 0.0 && l1 > 0.0);
  Alcotest.(check bool) "state dependent" true (l0 <> l1)

let check_leakage_magnitude () =
  (* ~13 mapped gates at 73..408 nA each, 0.9 V: must land between
     0.5 and 10 uW -- the same regime as the paper's numbers scale to *)
  let c = Lazy.force mapped_s27 in
  let v = settled c ~sources:(fun _ -> false) in
  let l = Power.Leakage.total_leakage_uw c v in
  Alcotest.(check bool) (Printf.sprintf "magnitude %.3f uW" l) true
    (l > 0.5 && l < 10.0)

let check_gate_state_packing () =
  let c = Lazy.force mapped_s27 in
  let v = bool_values c (fun _ -> true) in
  Array.iter
    (fun nd ->
      if Gate.is_logic nd.Circuit.kind then begin
        let st = Power.Leakage.gate_state c v nd.Circuit.id in
        Alcotest.(check int) "all ones"
          ((1 lsl Array.length nd.Circuit.fanins) - 1)
          st
      end)
    (Circuit.nodes c)

let check_average_leakage () =
  let c = Lazy.force mapped_s27 in
  let v0 = settled c ~sources:(fun _ -> false) in
  let v1 = settled c ~sources:(fun _ -> true) in
  let l0 = Power.Leakage.total_leakage_uw c v0 in
  let l1 = Power.Leakage.total_leakage_uw c v1 in
  Alcotest.check (Alcotest.float 1e-9) "mean of two" ((l0 +. l1) /. 2.0)
    (Power.Leakage.average_leakage_uw c [ v0; v1 ]);
  Alcotest.check_raises "empty"
    (Invalid_argument "Leakage.average_leakage_uw: no snapshots") (fun () ->
      ignore (Power.Leakage.average_leakage_uw c []))

let check_expected_leakage_interpolates () =
  (* with all probabilities 0 or 1, the expectation equals the
     deterministic leakage *)
  let c = Lazy.force mapped_s27 in
  let v = settled c ~sources:(fun id -> id mod 2 = 0) in
  let p_one =
    Array.init (Circuit.node_count c) (fun id -> if v.(id) then 1.0 else 0.0)
  in
  let exact = Power.Leakage.total_leakage_uw c v in
  Alcotest.check (Alcotest.float 1e-6) "degenerate expectation" exact
    (Power.Leakage.expected_total_leakage_uw c ~p_one);
  (* uniform probabilities land strictly between min and max over all
     source assignments of this tiny circuit's extremes *)
  let p_half = Array.make (Circuit.node_count c) 0.5 in
  let e = Power.Leakage.expected_total_leakage_uw c ~p_one:p_half in
  Alcotest.(check bool) "positive expectation" true (e > 0.0)

let prop_total_is_sum_of_gates =
  QCheck.Test.make ~name:"total leakage = sum over gates" ~count:20
    (QCheck.make QCheck.Gen.(int_range 0 1000))
    (fun seed ->
      let c = Lazy.force mapped_s27 in
      let rng = Util.Rng.create seed in
      let v = settled c ~sources:(fun _ -> Util.Rng.bool rng) in
      let sum = ref 0.0 in
      Array.iter
        (fun nd ->
          if Gate.is_logic nd.Circuit.kind then
            sum := !sum +. Power.Leakage.gate_leakage_na c v nd.Circuit.id)
        (Circuit.nodes c);
      let total = Power.Leakage.total_leakage_uw c v in
      Float.abs ((!sum *. Techlib.Leakage_table.vdd /. 1000.0) -. total) < 1e-9)

let suite =
  [
    Alcotest.test_case "no toggles, no dynamic power" `Quick
      check_switching_zero_for_no_toggles;
    Alcotest.test_case "switching scales linearly" `Quick
      check_switching_scales_linearly;
    Alcotest.test_case "switching validation" `Quick check_switching_validation;
    Alcotest.test_case "output markers cost nothing" `Quick
      check_output_markers_cost_nothing;
    Alcotest.test_case "leakage positive and state dependent" `Quick
      check_leakage_positive_and_state_dependent;
    Alcotest.test_case "leakage magnitude" `Quick check_leakage_magnitude;
    Alcotest.test_case "gate state packing" `Quick check_gate_state_packing;
    Alcotest.test_case "average leakage" `Quick check_average_leakage;
    Alcotest.test_case "expected leakage interpolates" `Quick
      check_expected_leakage_interpolates;
    QCheck_alcotest.to_alcotest prop_total_is_sum_of_gates;
  ]
