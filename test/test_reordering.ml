(* Test-vector and scan-cell reordering (the paper's "further
   improvements" extension). *)

open Netlist

let mapped name = Techmap.Mapper.map (Circuits.by_name name)

let check_hamming () =
  Alcotest.(check int) "zero" 0
    (Scanpower.Reordering.hamming [| true; false |] [| true; false |]);
  Alcotest.(check int) "two" 2
    (Scanpower.Reordering.hamming [| true; false |] [| false; true |]);
  Alcotest.check_raises "length"
    (Invalid_argument "Reordering.hamming: length mismatch") (fun () ->
      ignore (Scanpower.Reordering.hamming [| true |] [||]))

let check_vector_reorder_permutation () =
  let c = mapped "s344" in
  let vectors = Atpg.Pattern_gen.random_vectors ~seed:7 ~count:40 c in
  let reordered = Scanpower.Reordering.reorder_vectors vectors in
  Alcotest.(check int) "same count" (List.length vectors) (List.length reordered);
  let sort = List.sort compare in
  Alcotest.(check bool) "is a permutation" true (sort vectors = sort reordered)

let check_vector_reorder_reduces_distance () =
  let c = mapped "s344" in
  let vectors = Atpg.Pattern_gen.random_vectors ~seed:7 ~count:40 c in
  let before = Scanpower.Reordering.total_adjacent_distance vectors in
  let after =
    Scanpower.Reordering.total_adjacent_distance
      (Scanpower.Reordering.reorder_vectors vectors)
  in
  Alcotest.(check bool)
    (Printf.sprintf "%d <= %d" after before)
    true (after <= before)

let check_vector_reorder_small_inputs () =
  Alcotest.(check (list (array bool))) "empty" []
    (Scanpower.Reordering.reorder_vectors []);
  let one = [ [| true |] ] in
  Alcotest.(check (list (array bool))) "singleton" one
    (Scanpower.Reordering.reorder_vectors one)

let check_chain_reorder_is_valid_chain () =
  let c = mapped "s382" in
  let vectors = Atpg.Pattern_gen.random_vectors ~seed:9 ~count:30 c in
  let chain = Scanpower.Reordering.reorder_chain c vectors in
  Alcotest.(check int) "full length"
    (Array.length (Circuit.dffs c))
    (Scan.Scan_chain.length chain);
  let sorted a = List.sort compare (Array.to_list a) in
  Alcotest.(check (list int)) "covers all cells"
    (sorted (Circuit.dffs c))
    (sorted (Scan.Scan_chain.cells chain))

let check_chain_reorder_reduces_conflicts () =
  let c = mapped "s382" in
  let vectors = Atpg.Pattern_gen.random_vectors ~seed:9 ~count:30 c in
  let natural = Scan.Scan_chain.natural c in
  let reordered = Scanpower.Reordering.reorder_chain c vectors in
  let before = Scanpower.Reordering.chain_column_conflicts c ~chain:natural vectors in
  let after =
    Scanpower.Reordering.chain_column_conflicts c ~chain:reordered vectors
  in
  Alcotest.(check bool)
    (Printf.sprintf "%d <= %d" after before)
    true (after <= before)

let check_chain_reorder_trivial_circuits () =
  let c = mapped "s27" in
  (* no vectors: fall back to the natural chain *)
  let chain = Scanpower.Reordering.reorder_chain c [] in
  Alcotest.(check (list int)) "natural fallback"
    (Array.to_list (Scan.Scan_chain.cells (Scan.Scan_chain.natural c)))
    (Array.to_list (Scan.Scan_chain.cells chain))

let check_reordering_preserves_responses () =
  (* reordered vectors with a reordered chain still capture the same
     (vector -> response) mapping as the natural setup *)
  let c = mapped "s27" in
  let vectors = Atpg.Pattern_gen.random_vectors ~seed:4 ~count:15 c in
  let reordered_vectors = Scanpower.Reordering.reorder_vectors vectors in
  let chain = Scan.Scan_chain.natural c in
  let chain' = Scanpower.Reordering.reorder_chain c vectors in
  let pairs chain vectors =
    let rs = Scan.Scan_sim.responses c chain Scan.Scan_sim.traditional ~vectors in
    (* normalise responses back to dffs order *)
    let normalise r =
      Array.map
        (fun id -> r.(Scan.Scan_chain.position_of chain id))
        (Circuit.dffs c)
    in
    List.sort compare (List.map2 (fun v r -> (v, normalise r)) vectors rs)
  in
  Alcotest.(check bool) "same vector->response map" true
    (pairs chain vectors = pairs chain' reordered_vectors)

(* Greedy nearest-neighbour is a heuristic: it is not guaranteed to
   beat an arbitrary input order on every instance, so the property
   checked here is the structural one (permutation, determinism), with
   improvement asserted statistically over a batch. *)
let prop_vector_reorder_structure =
  QCheck.Test.make ~name:"vector reorder: permutation and deterministic" ~count:30
    (QCheck.make QCheck.Gen.(pair (int_range 0 1000) (int_range 2 25)))
    (fun (seed, count) ->
      let rng = Util.Rng.create seed in
      let vectors = List.init count (fun _ -> Util.Rng.bool_array rng 12) in
      let r1 = Scanpower.Reordering.reorder_vectors vectors in
      let r2 = Scanpower.Reordering.reorder_vectors vectors in
      r1 = r2 && List.sort compare r1 = List.sort compare vectors)

let check_vector_reorder_wins_on_average () =
  let wins = ref 0 and total = 50 in
  for seed = 1 to total do
    let rng = Util.Rng.create seed in
    let vectors = List.init 30 (fun _ -> Util.Rng.bool_array rng 16) in
    let before = Scanpower.Reordering.total_adjacent_distance vectors in
    let after =
      Scanpower.Reordering.total_adjacent_distance
        (Scanpower.Reordering.reorder_vectors vectors)
    in
    if after <= before then incr wins
  done;
  Alcotest.(check bool)
    (Printf.sprintf "greedy beats random order %d/%d times" !wins total)
    true
    (!wins >= total * 9 / 10)

let check_measured_shift_power_improves () =
  (* end to end: on traditional scan, reordering the vectors lowers (or
     preserves) the measured shift activity *)
  let c = mapped "s382" in
  let chain = Scan.Scan_chain.natural c in
  let vectors = Atpg.Pattern_gen.random_vectors ~seed:2 ~count:40 c in
  let base = Scan.Scan_sim.measure c chain Scan.Scan_sim.traditional ~vectors in
  let reordered =
    Scan.Scan_sim.measure c chain Scan.Scan_sim.traditional
      ~vectors:(Scanpower.Reordering.reorder_vectors vectors)
  in
  Alcotest.(check bool)
    (Printf.sprintf "%d <= %d" reordered.Scan.Scan_sim.total_toggles
       base.Scan.Scan_sim.total_toggles)
    true
    (reordered.Scan.Scan_sim.total_toggles <= base.Scan.Scan_sim.total_toggles)

let suite =
  [
    Alcotest.test_case "hamming" `Quick check_hamming;
    Alcotest.test_case "vector reorder is a permutation" `Quick
      check_vector_reorder_permutation;
    Alcotest.test_case "vector reorder reduces distance" `Quick
      check_vector_reorder_reduces_distance;
    Alcotest.test_case "vector reorder small inputs" `Quick
      check_vector_reorder_small_inputs;
    Alcotest.test_case "chain reorder valid" `Quick check_chain_reorder_is_valid_chain;
    Alcotest.test_case "chain reorder reduces conflicts" `Quick
      check_chain_reorder_reduces_conflicts;
    Alcotest.test_case "chain reorder trivial" `Quick check_chain_reorder_trivial_circuits;
    Alcotest.test_case "reordering preserves responses" `Quick
      check_reordering_preserves_responses;
    QCheck_alcotest.to_alcotest prop_vector_reorder_structure;
    Alcotest.test_case "vector reorder wins on average" `Quick
      check_vector_reorder_wins_on_average;
    Alcotest.test_case "measured shift power improves" `Quick
      check_measured_shift_power_improves;
  ]
