(* Self-healing serve: registry snapshot/restore, the supervision tree
   (crash → restart under a token budget, warm restore, idempotent
   client replay), the memory-pressure watchdog's degraded mode, the
   resilient client (reconnect/replay on torn writes, hedged reads),
   telemetry flush on drain, and a seeded protocol fuzzer that hammers
   a live daemon with mutated frames.

   Every live test forks a real daemon (or supervisor) child, so this
   suite must run before anything spawns a domain in the test process
   — OCaml 5 permanently refuses [Unix.fork] afterwards. *)

module P = Scanpower_server.Protocol
module D = Scanpower_server.Daemon
module S = Scanpower_server.Supervisor
module C = Scanpower_server.Client
module R = Scanpower_server.Registry
module E = Scanpower_errors
module Json = Telemetry.Json
module Events = Telemetry.Events
module Flow = Scanpower.Flow
module FI = Runner.Fault_inject

let sock_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sp-resil-%d-%d.sock" (Unix.getpid ()) !counter)

let tmp_file =
  let counter = ref 0 in
  fun suffix ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sp-resil-%d-%d%s" (Unix.getpid ()) !counter suffix)

let expect_value label = function
  | Ok v -> v
  | Error e -> Alcotest.fail (label ^ ": " ^ E.to_string e)

let member_int obj k =
  match Json.member k obj with Some (Json.Int n) -> Some n | _ -> None

(* fork a plain daemon with an optional in-child fault spec *)
let start_daemon ?spec ?(configure = fun c -> c) () =
  let socket = sock_path () in
  let config = configure { D.default_config with D.socket; log = None } in
  flush stdout;
  flush stderr;
  let pid = Unix.fork () in
  if pid = 0 then begin
    FI.set spec;
    (try ignore (D.run ~config ()) with _ -> ());
    Unix._exit 0
  end;
  (pid, socket)

(* fork a supervisor whose daemon children inherit the fault spec *)
let start_supervised ?spec ?(budget = 5) ?(refill = 30.0)
    ?(configure = fun c -> c) () =
  let socket = sock_path () in
  let daemon = configure { D.default_config with D.socket; log = None } in
  flush stdout;
  flush stderr;
  let pid = Unix.fork () in
  if pid = 0 then begin
    FI.set spec;
    let code =
      try
        S.run
          ~config:
            { S.daemon; restart_budget = budget; restart_refill_s = refill }
          ();
        0
      with
      | E.Error e -> E.exit_code e.E.code
      | _ -> 4
    in
    Unix._exit code
  end;
  (pid, socket)

let stop pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  try snd (Unix.waitpid [] pid)
  with Unix.Unix_error _ -> Unix.WEXITED 0

let kill_hard pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* registry snapshot / restore / trim                                  *)
(* ------------------------------------------------------------------ *)

let tiny name seed =
  Circuits.generate
    { Circuits.name; n_pi = 4; n_po = 2; n_ff = 3; n_gates = 20; seed }

let warm_two reg =
  List.iter
    (fun (name, seed) ->
      let c = tiny name seed in
      let key = Flow.prepare_key c in
      ignore (R.find_or_prepare reg ~key ~name (fun () -> Flow.prepare c)))
    [ ("snapA", 1); ("snapB", 2) ]

let check_snapshot_roundtrip () =
  let path = tmp_file ".snap" in
  let reg = R.create ~capacity:8 () in
  warm_two reg;
  Alcotest.(check int) "snapshot writes both" 2 (R.snapshot reg ~path);
  let fresh = R.create ~capacity:8 () in
  Alcotest.(check int) "restore recovers both" 2 (R.restore fresh ~path);
  (* a restored entry is warm: find_or_prepare must hit, not rebuild *)
  let c = tiny "snapA" 1 in
  let built = ref false in
  let _, hit =
    R.find_or_prepare fresh ~key:(Flow.prepare_key c) ~name:"snapA"
      (fun () ->
        built := true;
        Flow.prepare c)
  in
  Alcotest.(check bool) "restored entry hits" true hit;
  Alcotest.(check bool) "restored entry not rebuilt" false !built;
  Alcotest.(check int) "hit counted" 1 (R.stats fresh).R.s_hits;
  Sys.remove path

let check_snapshot_corruption () =
  let path = tmp_file ".snap" in
  let reg = R.create ~capacity:8 () in
  warm_two reg;
  ignore (R.snapshot reg ~path);
  (* truncation: cut the payload short *)
  let full = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub full 0 (String.length full / 2)));
  let r1 = R.create ~capacity:8 () in
  Alcotest.(check int) "truncated snapshot is a cold start" 0
    (R.restore r1 ~path);
  (* clobbered payload byte: the digest catches it *)
  let bad = Bytes.of_string full in
  Bytes.set bad (Bytes.length bad - 1) '\x00';
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc bad);
  let r2 = R.create ~capacity:8 () in
  Alcotest.(check int) "clobbered snapshot is a cold start" 0
    (R.restore r2 ~path);
  (* wrong magic *)
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "not-a-snapshot/0\n");
  let r3 = R.create ~capacity:8 () in
  Alcotest.(check int) "wrong magic is a cold start" 0 (R.restore r3 ~path);
  (* missing file *)
  Sys.remove path;
  let r4 = R.create ~capacity:8 () in
  Alcotest.(check int) "missing file is a cold start" 0 (R.restore r4 ~path)

let check_trim () =
  let reg = R.create ~capacity:8 () in
  List.iter
    (fun seed ->
      let c = tiny (Printf.sprintf "trim%d" seed) seed in
      ignore
        (R.find_or_prepare reg
           ~key:(Flow.prepare_key c)
           ~name:(Printf.sprintf "trim%d" seed)
           (fun () -> Flow.prepare c)))
    [ 1; 2; 3; 4 ];
  Alcotest.(check int) "evicts down to keep" 2 (R.trim reg ~keep:2);
  Alcotest.(check int) "two left" 2 (R.stats reg).R.s_entries;
  Alcotest.(check int) "noop below keep" 0 (R.trim reg ~keep:4);
  Alcotest.(check int) "keep 0 empties" 2 (R.trim reg ~keep:0)

(* ------------------------------------------------------------------ *)
(* telemetry flush on shutdown                                         *)
(* ------------------------------------------------------------------ *)

let check_events_flush () =
  let flushed = ref 0 in
  let seen = ref [] in
  let sub =
    Events.subscribe
      ~flush:(fun () -> incr flushed)
      (fun ev -> seen := ev.Events.name :: !seen)
  in
  Events.emit "resilience.test" [];
  Events.flush_subscribers ();
  Events.flush_subscribers ();
  Events.unsubscribe sub;
  Alcotest.(check (list string)) "event delivered" [ "resilience.test" ] !seen;
  Alcotest.(check int) "flush callback ran per call" 2 !flushed;
  (* a subscriber without a flush callback is fine *)
  let sub2 = Events.subscribe (fun _ -> ()) in
  Events.flush_subscribers ();
  Events.unsubscribe sub2;
  (* a throwing flush is swallowed like a throwing subscriber *)
  let sub3 = Events.subscribe ~flush:(fun () -> failwith "boom") (fun _ -> ()) in
  Events.flush_subscribers ();
  Events.unsubscribe sub3

(* ------------------------------------------------------------------ *)
(* fault-injection spec round-trip for the socket-level sites          *)
(* ------------------------------------------------------------------ *)

let check_socket_fault_sites () =
  let spec = "seed=9,torn_write=0.5,worker_kill=1,stall_read=0.25,heap_spike=0.1" in
  match FI.of_spec spec with
  | Error m -> Alcotest.fail m
  | Ok t ->
    Alcotest.(check bool) "torn_write rate" true (FI.rate t FI.Torn_write = 0.5);
    Alcotest.(check bool) "worker_kill rate" true
      (FI.rate t FI.Worker_kill = 1.0);
    (match FI.of_spec (FI.to_spec t) with
    | Ok t' -> Alcotest.(check bool) "spec round-trips" true (t = t')
    | Error m -> Alcotest.fail m);
    (* rolls are pure in (seed, site, key) *)
    FI.with_spec (Some t) (fun () ->
        let a = FI.fires FI.Worker_kill ~key:"x#gen1" in
        let b = FI.fires FI.Worker_kill ~key:"x#gen1" in
        Alcotest.(check bool) "deterministic roll" a b)

(* ------------------------------------------------------------------ *)
(* supervisor: crash, restart, warm restore, idempotent replay         *)
(* ------------------------------------------------------------------ *)

(* [FI.fires] is pure in (seed, site, key), so we can search for a
   seed under which generation 1 is killed mid-request and generation
   2 (and every other id we use) is spared — making the chaos run
   fully deterministic. *)
let find_kill_seed () =
  let fire_ids = [ "kill-me#gen1" ] in
  let spare_ids =
    [ "warm#gen1"; "kill-me#gen2"; "st#gen2"; "h#gen1"; "h#gen2" ]
  in
  let ok seed =
    let spec = { FI.seed; rates = [ (FI.Worker_kill, 0.5) ] } in
    FI.with_spec (Some spec) (fun () ->
        List.for_all (fun key -> FI.fires FI.Worker_kill ~key) fire_ids
        && List.for_all
             (fun key -> not (FI.fires FI.Worker_kill ~key))
             spare_ids)
  in
  let rec go seed =
    if seed > 100_000 then Alcotest.fail "no kill seed found"
    else if ok seed then seed
    else go (seed + 1)
  in
  go 0

let check_supervisor_restart_replay () =
  let seed = find_kill_seed () in
  let snap = tmp_file ".snap" in
  let pid, socket =
    start_supervised
      ~spec:{ FI.seed; rates = [ (FI.Worker_kill, 0.5) ] }
      ~configure:(fun c ->
        { c with
          D.snapshot_path = Some snap;
          snapshot_every_s = 0.05;
          registry_capacity = 8;
        })
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (stop pid);
      if Sys.file_exists snap then Sys.remove snap)
    (fun () ->
      let session = C.session ~retry_for_s:30.0 socket in
      Fun.protect
        ~finally:(fun () -> C.close_session session)
        (fun () ->
          (* generation 1: execute once, warming the registry *)
          let warm =
            expect_value "warm flow"
              (C.call session (P.make ~id:"warm" ~circuit:"s27" ~seed:7 P.Flow))
          in
          Alcotest.(check (option int)) "single execution (warm)" (Some 1)
            (member_int warm "idem_executions");
          let h1 =
            expect_value "gen1 health"
              (C.call session (P.make ~id:"h" P.Health))
          in
          Alcotest.(check (option int)) "generation 1" (Some 1)
            (member_int h1 "generation");
          (* let the periodic snapshot tick capture the warm entry *)
          Unix.sleepf 0.6;
          (* generation 1 is SIGKILLed mid-request; the supervisor
             restarts, generation 2 restores the snapshot, and the
             session replays — same id, same idempotency key *)
          let killed =
            expect_value "replayed flow"
              (C.call session
                 (P.make ~id:"kill-me" ~circuit:"s27" ~seed:7 P.Flow))
          in
          Alcotest.(check bool) "session replayed" true
            (C.session_replays session >= 1);
          (* zero duplicate execution across the crash *)
          Alcotest.(check (option int)) "single execution (replay)" (Some 1)
            (member_int killed "idem_executions");
          (* the replay ran against the RESTORED registry: a warm hit *)
          Alcotest.(check bool) "warm after restore" true
            (Json.member "registry_hit" killed = Some (Json.Bool true));
          (* bit-identical to the undisturbed run on generation 1 *)
          (match (Json.member "comparison" warm, Json.member "comparison" killed)
           with
          | Some a, Some b ->
            Alcotest.(check bool) "bit-identical comparison" true
              (Json.equal a b)
          | _ -> Alcotest.fail "flow values must carry a comparison");
          (* the restart is visible: generation bumped, restore counted *)
          let st =
            expect_value "gen2 stats" (C.call session (P.make ~id:"st" P.Stats))
          in
          Alcotest.(check (option int)) "generation 2" (Some 2)
            (member_int st "generation");
          Alcotest.(check bool) "warm_restored > 0" true
            (match member_int st "warm_restored" with
            | Some n -> n > 0
            | None -> false);
          (match Json.member "registry" st with
          | Some reg ->
            Alcotest.(check bool) "registry warm-hit > 0" true
              (match member_int reg "hits" with Some n -> n > 0 | None -> false)
          | None -> Alcotest.fail "stats must carry registry stats")));
  (* SIGTERM drained the supervisor tree cleanly *)
  ()

let check_supervisor_budget_exhausted () =
  (* every request is killed (rate 1): budget 2 absorbs two crashes,
     the third exhausts it and the supervisor exits runtime/4 *)
  let pid, socket =
    start_supervised
      ~spec:{ FI.seed = 1; rates = [ (FI.Worker_kill, 1.0) ] }
      ~budget:2 ~refill:0.0 ()
  in
  (* keep sending doomed requests until the bucket drains and the
     supervisor gives up — a fixed attempt count would race the
     restart window under load *)
  let deadline = Unix.gettimeofday () +. 60.0 in
  let rec hammer i =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then begin
        kill_hard pid;
        Alcotest.fail "restart budget never exhausted"
      end;
      (try
         let client = C.connect ~retry_for_s:2.0 socket in
         Fun.protect
           ~finally:(fun () -> C.close client)
           (fun () ->
             ignore
               (C.rpc client (P.make ~id:(Printf.sprintf "boom%d" i) P.Health)))
       with _ -> ());
      Unix.sleepf 0.05;
      hammer (i + 1)
    | _, status -> status
  in
  match hammer 1 with
  | Unix.WEXITED 4 -> ()
  | Unix.WEXITED n -> Alcotest.failf "expected exit 4, got exit %d" n
  | _ -> Alcotest.fail "supervisor must exit, not die of a signal"

(* ------------------------------------------------------------------ *)
(* memory watchdog: degraded mode sheds compute, keeps health alive    *)
(* ------------------------------------------------------------------ *)

let check_degraded_mode () =
  (* every read pins a ~32 MB spike against a 1 MW (8 MB) budget: the
     watchdog must trim, then degrade *)
  let pid, socket =
    start_daemon
      ~spec:{ FI.seed = 3; rates = [ (FI.Heap_spike, 1.0) ] }
      ~configure:(fun c -> { c with D.max_heap_mw = 1.0 })
      ()
  in
  Fun.protect
    ~finally:(fun () -> ignore (stop pid))
    (fun () ->
      let client = C.connect ~retry_for_s:10.0 socket in
      Fun.protect
        ~finally:(fun () -> C.close client)
        (fun () ->
          (* hammer flow requests until the shed kicks in *)
          let degraded = ref false in
          let tries = ref 0 in
          while (not !degraded) && !tries < 20 do
            incr tries;
            match
              C.rpc client
                (P.make
                   ~id:(Printf.sprintf "f%d" !tries)
                   ~circuit:"s27" P.Flow)
            with
            | Error e when e.E.code = E.Degraded ->
              degraded := true;
              Alcotest.(check string) "degraded names admission"
                "server.admission" e.E.stage
            | Ok _ | Error _ -> ()
          done;
          Alcotest.(check bool) "daemon eventually sheds" true !degraded;
          (* cheap requests keep being served while degraded *)
          let h =
            expect_value "health alive while degraded"
              (C.rpc client (P.make ~id:"h" P.Health))
          in
          Alcotest.(check bool) "status ok" true
            (Json.member "status" h = Some (Json.String "ok"));
          (* and the resilient client backs off and retries degraded:
             with a short window it surfaces the degraded error rather
             than hanging *)
          let session = C.session ~retry_for_s:0.3 socket in
          (match C.call session (P.make ~id:"r1" ~circuit:"s27" P.Flow) with
          | Error e ->
            Alcotest.(check bool) "degraded or deadline after retries" true
              (e.E.code = E.Degraded || e.E.code = E.Deadline)
          | Ok _ -> ());
          C.close_session session))

(* ------------------------------------------------------------------ *)
(* torn writes: the resilient client replays, the dispatcher dedupes   *)
(* ------------------------------------------------------------------ *)

(* find a seed where the first write of the response to [torn] is torn
   and the replay's write goes through *)
let find_torn_seed () =
  let ok seed =
    let spec = { FI.seed; rates = [ (FI.Torn_write, 0.5) ] } in
    FI.with_spec (Some spec) (fun () ->
        FI.fires FI.Torn_write ~key:"torn#w1"
        && not (FI.fires FI.Torn_write ~key:"torn#w2"))
  in
  let rec go seed =
    if seed > 100_000 then Alcotest.fail "no torn seed found"
    else if ok seed then seed
    else go (seed + 1)
  in
  go 0

let check_torn_write_replay () =
  let seed = find_torn_seed () in
  let pid, socket =
    start_daemon ~spec:{ FI.seed; rates = [ (FI.Torn_write, 0.5) ] } ()
  in
  Fun.protect
    ~finally:(fun () -> ignore (stop pid))
    (fun () ->
      let session = C.session ~retry_for_s:15.0 socket in
      Fun.protect
        ~finally:(fun () -> C.close_session session)
        (fun () ->
          let v =
            expect_value "survives the torn write"
              (C.call session (P.make ~id:"torn" ~circuit:"s27" P.Flow))
          in
          Alcotest.(check bool) "client replayed" true
            (C.session_replays session >= 1);
          (* the dispatcher served the replay from the idempotency
             store: stored before the torn write, executed once *)
          Alcotest.(check (option int)) "no double execution" (Some 1)
            (member_int v "idem_executions")))

let check_hedged_health () =
  let pid, socket = start_daemon () in
  Fun.protect
    ~finally:(fun () -> ignore (stop pid))
    (fun () ->
      let session = C.session ~retry_for_s:10.0 ~hedge_after_s:0.05 socket in
      Fun.protect
        ~finally:(fun () -> C.close_session session)
        (fun () ->
          let h =
            expect_value "hedged health" (C.call session (P.make ~id:"h" P.Health))
          in
          Alcotest.(check bool) "status ok" true
            (Json.member "status" h = Some (Json.String "ok"));
          (* a compute kind is never hedged, but still served *)
          let v =
            expect_value "unhedged flow"
              (C.call session (P.make ~id:"f" ~circuit:"s27" P.Flow))
          in
          Alcotest.(check bool) "flow answered" true
            (Json.member "comparison" v <> None)))

(* ------------------------------------------------------------------ *)
(* protocol parsing never raises (pure QCheck)                         *)
(* ------------------------------------------------------------------ *)

let prop_request_of_line_total =
  QCheck.Test.make ~name:"request_of_line never raises on arbitrary bytes"
    ~count:2000
    QCheck.(string_of Gen.(char_range '\000' '\255'))
    (fun s ->
      match P.request_of_line s with Ok _ | Error _ -> true)

(* The fuzz dictionary: cheap kinds only (health / stats / a tiny
   inline validate / a flow missing its circuit, which is a fast usage
   error), so ten thousand live cases stay fast. The bench text's real
   newlines are escaped by the JSON printer, so each frame is still
   one line. *)
let valid_frames =
  [
    Json.to_string (P.request_to_json (P.make ~id:"a" ~idem:"k1" P.Flow));
    Json.to_string
      (P.request_to_json
         (P.make ~id:"b" ~bench:"INPUT(a)\nOUTPUT(b)\nb = NOT(a)\n" ~name:"t"
            ~seed:7 ~deadline_s:1.5 ~stream:true P.Validate));
    Json.to_string (P.request_to_json (P.make ~id:"c" P.Health));
    Json.to_string (P.request_to_json (P.make ~id:"d" ~idem:"k2" P.Stats));
  ]

(* single-edit mutations of valid frames: flip, delete or insert one
   byte — the parser must still never raise *)
let prop_mutated_frame_total =
  let gen =
    QCheck.Gen.(
      let* frame = oneofl valid_frames in
      let* pos = int_range 0 (max 0 (String.length frame - 1)) in
      let* op = int_range 0 2 in
      let* byte = char_range '\000' '\255' in
      return
        (match op with
        | 0 ->
          (* flip *)
          String.mapi (fun i c -> if i = pos then byte else c) frame
        | 1 ->
          (* delete *)
          String.sub frame 0 pos
          ^ String.sub frame (pos + 1) (String.length frame - pos - 1)
        | _ ->
          (* insert *)
          String.sub frame 0 pos
          ^ String.make 1 byte
          ^ String.sub frame pos (String.length frame - pos)))
  in
  QCheck.Test.make ~name:"single-edit mutations never raise" ~count:2000
    (QCheck.make gen) (fun s ->
      match P.request_of_line s with Ok _ | Error _ -> true)

let check_idem_roundtrip () =
  let r = P.make ~id:"x" ~circuit:"s27" ~idem:"key-42" P.Flow in
  (match P.parse_request (P.request_to_json r) with
  | Ok r' ->
    Alcotest.(check bool) "idem survives the wire" true (r = r');
    Alcotest.(check (option string)) "key intact" (Some "key-42") r'.P.idem
  | Error e -> Alcotest.fail (E.to_string e));
  (* an empty key is rejected, absent is fine *)
  (match P.request_of_line {|{"id":"x","kind":"health","idem":""}|} with
  | Error e ->
    Alcotest.(check string) "empty idem rejected" "usage"
      (E.code_to_string e.E.code)
  | Ok _ -> Alcotest.fail "empty idem must be rejected");
  match P.request_of_line {|{"id":"x","kind":"health"}|} with
  | Ok r -> Alcotest.(check (option string)) "absent idem" None r.P.idem
  | Error e -> Alcotest.fail (E.to_string e)

(* ------------------------------------------------------------------ *)
(* live protocol fuzzer: a seeded storm of mutated frames              *)
(* ------------------------------------------------------------------ *)

let fuzz_cases () =
  match Sys.getenv_opt "SCANPOWER_FUZZ_CASES" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 10_000)
  | None -> 10_000

(* one fuzz case: a line (possibly containing embedded newlines after
   mutation) derived from the dictionary or pure noise *)
let fuzz_line rng =
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let mutate s =
    if String.length s = 0 then s
    else
      let pos = Random.State.int rng (String.length s) in
      match Random.State.int rng 4 with
      | 0 ->
        String.mapi
          (fun i c ->
            if i = pos then Char.chr (Random.State.int rng 256) else c)
          s
      | 1 -> String.sub s 0 pos
      | 2 ->
        String.sub s 0 pos
        ^ String.make 1 (Char.chr (Random.State.int rng 256))
        ^ String.sub s pos (String.length s - pos)
      | _ ->
        (* splice: head of one frame, tail of another *)
        let other = pick valid_frames in
        String.sub s 0 pos
        ^ String.sub other
            (min pos (String.length other))
            (String.length other - min pos (String.length other))
  in
  match Random.State.int rng 10 with
  | 0 ->
    (* pure noise *)
    String.init
      (Random.State.int rng 64)
      (fun _ -> Char.chr (Random.State.int rng 256))
  | 1 -> pick valid_frames
  | n ->
    let rec apply s k = if k = 0 then s else apply (mutate s) (k - 1) in
    apply (pick valid_frames) (if n < 6 then 1 else 1 + Random.State.int rng 4)

let check_protocol_fuzzer () =
  let cases = fuzz_cases () in
  let rng = Random.State.make [| 0xF0221 |] in
  let pid, socket = start_daemon () in
  let answered = ref 0 in
  Fun.protect
    ~finally:(fun () -> ignore (stop pid))
    (fun () ->
      let sent = ref 0 in
      let batches = ref 0 in
      while !sent < cases do
        let batch = min 50 (cases - !sent) in
        let lines = List.init batch (fun _ -> fuzz_line rng) in
        sent := !sent + batch;
        incr batches;
        let client = C.connect ~retry_for_s:10.0 socket in
        Fun.protect
          ~finally:(fun () -> C.close client)
          (fun () ->
            List.iter (fun l -> C.send_raw client l) lines;
            (* a trailing valid request bounds the drain: the daemon
               answers in order, so once the sync response arrives every
               fuzz response has been read. [read_response] parses each
               line on the way (a malformed response would fail the
               test) and returns early on null-id protocol rejections —
               loop until the sync id itself answers. A transport-level
               error means the storm killed the daemon: fail loudly. *)
            let sync_id = Printf.sprintf "sync%d" !batches in
            C.send client (P.make ~id:sync_id P.Health);
            let rec drain () =
              match
                C.read_response client ~id:sync_id ~on_other:(fun _ ->
                    incr answered)
              with
              | Ok _ -> ()
              | Error e
                when e.E.stage = "client.read" || e.E.stage = "client.connect"
                ->
                Alcotest.failf "daemon dropped the connection: %s"
                  (E.to_string e)
              | Error _ ->
                (* a null-id rejection of one fuzz frame *)
                incr answered;
                drain ()
            in
            drain ())
      done;
      (* after the storm: the daemon is alive, healthy, and actually
         answered things (the dictionary guarantees some well-formed
         error or result per batch) *)
      Alcotest.(check bool) "daemon answered fuzz frames" true (!answered > 0);
      let client = C.connect ~retry_for_s:10.0 socket in
      Fun.protect
        ~finally:(fun () -> C.close client)
        (fun () ->
          let h =
            expect_value "health after fuzzing"
              (C.rpc client (P.make ~id:"h" P.Health))
          in
          Alcotest.(check bool) "daemon survived the storm" true
            (Json.member "status" h = Some (Json.String "ok"))))

let suite =
  [
    Alcotest.test_case "registry snapshot round-trip" `Quick
      check_snapshot_roundtrip;
    Alcotest.test_case "corrupt snapshots are cold starts" `Quick
      check_snapshot_corruption;
    Alcotest.test_case "registry trim" `Quick check_trim;
    Alcotest.test_case "events flush on shutdown" `Quick check_events_flush;
    Alcotest.test_case "socket-level fault sites" `Quick
      check_socket_fault_sites;
    Alcotest.test_case "idem key round-trip" `Quick check_idem_roundtrip;
    QCheck_alcotest.to_alcotest prop_request_of_line_total;
    QCheck_alcotest.to_alcotest prop_mutated_frame_total;
    Alcotest.test_case "supervisor restart + idempotent replay" `Slow
      check_supervisor_restart_replay;
    Alcotest.test_case "restart budget exhausted exits 4" `Slow
      check_supervisor_budget_exhausted;
    Alcotest.test_case "degraded mode sheds compute" `Slow check_degraded_mode;
    Alcotest.test_case "torn write replay dedupes" `Slow
      check_torn_write_replay;
    Alcotest.test_case "hedged health" `Quick check_hedged_health;
    Alcotest.test_case "live protocol fuzzer" `Slow check_protocol_fuzzer;
  ]
