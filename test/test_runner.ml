(* The parallel sweep runner: content-addressed cache, fork pool with
   crash isolation / timeout / retry, and the flow sweep built on top
   of them — including the golden guarantee that a parallel, cached
   sweep is bit-identical to the sequential per-circuit flow. *)

module Json = Telemetry.Json

let tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "scanpower-runner-test-%d-%d" (Unix.getpid ()) !counter)

(* ------------------------------------------------------------------ *)
(* cache                                                               *)
(* ------------------------------------------------------------------ *)

let check_cache_hit_and_miss () =
  let cache = Runner.Cache.create ~dir:(tmp_dir ()) () in
  let k1 = Runner.Cache.key ~schema:"t/1" ~parts:[ "netlist"; "seed=1" ] in
  let k2 = Runner.Cache.key ~schema:"t/1" ~parts:[ "netlist"; "seed=2" ] in
  let k3 = Runner.Cache.key ~schema:"t/2" ~parts:[ "netlist"; "seed=1" ] in
  Alcotest.(check bool) "params change the key" true (k1 <> k2);
  Alcotest.(check bool) "schema changes the key" true (k1 <> k3);
  Alcotest.(check bool) "no aliasing across part boundaries" true
    (Runner.Cache.key ~schema:"t/1" ~parts:[ "ab"; "c" ]
    <> Runner.Cache.key ~schema:"t/1" ~parts:[ "a"; "bc" ]);
  Alcotest.(check bool) "miss before store" true
    (Runner.Cache.find cache k1 = None);
  Runner.Cache.store cache k1 (Json.Int 7);
  (match Runner.Cache.find cache k1 with
  | Some (Json.Int 7) -> ()
  | _ -> Alcotest.fail "expected a hit with the stored value");
  Alcotest.(check bool) "identical inputs, identical key" true
    (Runner.Cache.key ~schema:"t/1" ~parts:[ "netlist"; "seed=1" ] = k1);
  Alcotest.(check bool) "other key still misses" true
    (Runner.Cache.find cache k2 = None)

let check_cache_corruption_recovery () =
  let cache = Runner.Cache.create ~dir:(tmp_dir ()) () in
  let k = Runner.Cache.key ~schema:"t/1" ~parts:[ "x" ] in
  Runner.Cache.store cache k (Json.String "good");
  let path = Runner.Cache.entry_path cache k in
  (* truncate the entry mid-JSON, as a crashed writer would *)
  Out_channel.with_open_bin path (fun oc ->
      output_string oc "{\"schema\":\"scanpower.cache/1\",\"key\":\"");
  Alcotest.(check bool) "corrupt entry reads as a miss" true
    (Runner.Cache.find cache k = None);
  Alcotest.(check bool) "corrupt entry no longer in the way" false
    (Sys.file_exists path);
  (* quarantined for post-mortem, not silently destroyed *)
  Alcotest.(check bool) "corrupt bytes preserved" true
    (Sys.file_exists (Runner.Cache.corrupt_path path));
  Runner.Cache.store cache k (Json.String "fresh");
  (match Runner.Cache.find cache k with
  | Some (Json.String "fresh") -> ()
  | _ -> Alcotest.fail "store after recovery should hit again");
  (* an entry from an older schema is stale, not corrupt: removed
     cleanly, nothing quarantined *)
  Out_channel.with_open_bin path (fun oc ->
      output_string oc
        "{\"schema\":\"scanpower.cache/0\",\"key\":\"x\",\"value\":1}");
  Sys.remove (Runner.Cache.corrupt_path path);
  Alcotest.(check bool) "stale schema is a miss" true
    (Runner.Cache.find cache k = None);
  Alcotest.(check bool) "stale entry deleted, not quarantined" false
    (Sys.file_exists (Runner.Cache.corrupt_path path))

(* ------------------------------------------------------------------ *)
(* pool                                                                *)
(* ------------------------------------------------------------------ *)

let job id run = { Runner.id; cache_key = None; run }

let value_of = function
  | { Runner.outcome = Runner.Done { value; _ }; _ } -> value
  | { Runner.outcome = Runner.Failed { last; _ }; job } ->
    Alcotest.fail
      (Printf.sprintf "job %s failed: %s" job.Runner.id
         (Runner.failure_to_string last))

let check_sequential () =
  let results, stats =
    Runner.run
      ~config:{ Runner.default_config with jobs = 1 }
      [
        job "a" (fun ~attempt:_ -> Json.Int 1);
        job "b" (fun ~attempt:_ -> Json.Int 2);
      ]
  in
  Alcotest.(check (list int))
    "values in submission order" [ 1; 2 ]
    (List.map
       (fun r -> match value_of r with Json.Int i -> i | _ -> -1)
       results);
  Alcotest.(check int) "computed" 2 stats.Runner.computed;
  Alcotest.(check int) "failed" 0 stats.Runner.failed

let check_parallel_values () =
  let n = 7 in
  let jobs =
    List.init n (fun i ->
        job (string_of_int i) (fun ~attempt:_ -> Json.Int (i * i)))
  in
  let results, stats =
    Runner.run ~config:{ Runner.default_config with jobs = 3 } jobs
  in
  List.iteri
    (fun i r ->
      match value_of r with
      | Json.Int v -> Alcotest.(check int) "squared" (i * i) v
      | _ -> Alcotest.fail "expected an int back")
    results;
  Alcotest.(check int) "computed" n stats.Runner.computed

let check_crash_isolation_and_retry () =
  (* the victim kills its own worker process on the first attempt; the
     bystander must be unaffected and the victim must succeed on retry *)
  let victim =
    job "victim" (fun ~attempt ->
        if attempt = 1 then Unix.kill (Unix.getpid ()) Sys.sigkill;
        Json.String "survived")
  in
  let bystander = job "bystander" (fun ~attempt:_ -> Json.String "fine") in
  let results, stats =
    Runner.run
      ~config:{ Runner.default_config with jobs = 2; retries = 2 }
      [ victim; bystander ]
  in
  (match results with
  | [ v; b ] ->
    (match v.Runner.outcome with
    | Runner.Done { value = Json.String "survived"; attempts = 2; _ } -> ()
    | Runner.Done { attempts; _ } ->
      Alcotest.fail (Printf.sprintf "expected 2 attempts, got %d" attempts)
    | Runner.Failed _ -> Alcotest.fail "victim should succeed on retry");
    (match b.Runner.outcome with
    | Runner.Done { value = Json.String "fine"; _ } -> ()
    | _ -> Alcotest.fail "bystander must not be harmed")
  | _ -> Alcotest.fail "two results expected");
  Alcotest.(check int) "one crash" 1 stats.Runner.crashes;
  Alcotest.(check int) "one retry" 1 stats.Runner.retries;
  Alcotest.(check int) "nothing failed" 0 stats.Runner.failed

let check_timeout () =
  let sleeper =
    job "sleeper" (fun ~attempt:_ ->
        Unix.sleepf 30.0;
        Json.Null)
  in
  let results, stats =
    Runner.run
      ~config:
        { Runner.default_config with jobs = 2; retries = 0; timeout_s = 0.2 }
      [ sleeper ]
  in
  (match results with
  | [ { Runner.outcome = Runner.Failed { last = Runner.Timed_out; _ }; _ } ] ->
    ()
  | _ -> Alcotest.fail "expected a Timed_out failure");
  Alcotest.(check int) "one timeout" 1 stats.Runner.timeouts

let check_job_error_reported () =
  let boom = job "boom" (fun ~attempt:_ -> failwith "deliberate") in
  let results, stats =
    Runner.run
      ~config:{ Runner.default_config with jobs = 2; retries = 0 }
      [ boom ]
  in
  (match results with
  | [ { Runner.outcome = Runner.Failed { last = Runner.Job_error msg; _ }; _ } ]
    ->
    Alcotest.(check bool) "message carried across the pipe" true
      (let needle = "deliberate" in
       let n = String.length needle and h = String.length msg in
       let rec go i = i + n <= h && (String.sub msg i n = needle || go (i + 1)) in
       go 0)
  | _ -> Alcotest.fail "expected a Job_error failure");
  Alcotest.(check int) "counted as failed" 1 stats.Runner.failed

let check_runner_cache_round () =
  let cache = Runner.Cache.create ~dir:(tmp_dir ()) () in
  let calls = ref 0 in
  let key = Runner.Cache.key ~schema:"t/1" ~parts:[ "the-job" ] in
  let j =
    {
      Runner.id = "cached-job";
      cache_key = Some key;
      run =
        (fun ~attempt:_ ->
          incr calls;
          Json.Int 5);
    }
  in
  let config =
    { Runner.default_config with jobs = 1; cache = Some cache }
  in
  let r1, s1 = Runner.run ~config [ j ] in
  let r2, s2 = Runner.run ~config [ j ] in
  Alcotest.(check int) "closure ran once" 1 !calls;
  Alcotest.(check int) "first run computed" 1 s1.Runner.computed;
  Alcotest.(check int) "second run computed nothing" 0 s2.Runner.computed;
  Alcotest.(check int) "second run hit" 1 s2.Runner.cache_hits;
  match (r1, r2) with
  | ( [ { Runner.outcome = Runner.Done { from_cache = false; _ }; _ } ],
      [
        {
          Runner.outcome = Runner.Done { from_cache = true; value = Json.Int 5; _ };
          _;
        };
      ] ) ->
    ()
  | _ -> Alcotest.fail "expected computed-then-cached outcomes"

(* ------------------------------------------------------------------ *)
(* sweep                                                               *)
(* ------------------------------------------------------------------ *)

let small_generated () =
  Circuits.generate
    { Circuits.name = "swp"; n_pi = 6; n_po = 4; n_ff = 5; n_gates = 60;
      seed = 99 }

let check_comparison_json_roundtrip () =
  let cmp = Scanpower.Flow.run_benchmark ~seed:7 (Circuits.s27 ()) in
  let text = Json.to_string (Scanpower.Sweep.comparison_to_json cmp) in
  match Json.of_string text with
  | Error e -> Alcotest.fail ("emitted JSON must parse: " ^ e)
  | Ok parsed -> (
    match Scanpower.Sweep.comparison_of_json parsed with
    | Error e -> Alcotest.fail ("round-trip decode failed: " ^ e)
    | Ok cmp' ->
      Alcotest.(check int) "bit-identical through JSON" 0 (compare cmp cmp'))

(* the acceptance golden: a parallel sweep with cache equals the
   sequential per-circuit flow bit for bit, a second identical sweep
   is pure cache (zero flow recomputation, visible in the telemetry
   counters), and the cached results are still identical *)
let check_sweep_golden_and_cache () =
  let dir = tmp_dir () in
  let circuits = [ Circuits.s27 (); small_generated () ] in
  let expected = List.map (Scanpower.Flow.run_benchmark ~seed:42) circuits in
  let run_once () =
    Scanpower.Sweep.run ~jobs:2 ~cache:(Runner.Cache.create ~dir ())
      (Scanpower.Sweep.points ~seeds:[ 42 ] circuits)
  in
  let check_identical tag (report : Scanpower.Sweep.report) =
    List.iter2
      (fun exp (r : Scanpower.Sweep.job_result) ->
        match r.Scanpower.Sweep.comparison with
        | Ok got ->
          Alcotest.(check int)
            (Printf.sprintf "%s: %s bit-identical" tag r.Scanpower.Sweep.circuit)
            0 (compare exp got)
        | Error e -> Alcotest.fail e)
      expected report.Scanpower.Sweep.results
  in
  let r1 = run_once () in
  check_identical "computed" r1;
  Alcotest.(check int) "first sweep computed everything" 2
    r1.Scanpower.Sweep.stats.Runner.computed;
  (* second run: watch the runner's own telemetry counters *)
  let was_enabled = Telemetry.enabled () in
  Telemetry.enable ();
  Telemetry.reset ();
  let r2 = run_once () in
  let counter name = Telemetry.Counter.find name in
  Alcotest.(check (option int))
    "zero flow recomputation" (Some 0)
    (counter "runner.jobs.computed");
  Alcotest.(check (option int))
    "every point served from cache" (Some 2)
    (counter "runner.cache.hit");
  Telemetry.reset ();
  if not was_enabled then Telemetry.disable ();
  check_identical "cached" r2;
  List.iter
    (fun (r : Scanpower.Sweep.job_result) ->
      Alcotest.(check bool) "from cache" true r.Scanpower.Sweep.from_cache;
      Alcotest.(check bool) "cached telemetry travels along" true
        (r.Scanpower.Sweep.telemetry <> None))
    r2.Scanpower.Sweep.results;
  (* the aggregate reports stay parseable / well-formed *)
  (match Json.of_string (Json.to_string (Scanpower.Sweep.to_json r2)) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("report JSON must parse: " ^ e));
  let csv = Scanpower.Sweep.to_csv r2 in
  Alcotest.(check int) "csv: header + one line per job" 3
    (List.length
       (String.split_on_char '\n' (String.trim csv)))

let check_prepare_cached_reuse () =
  let c = small_generated () in
  let p1 = Scanpower.Flow.prepare_cached c in
  let p2 = Scanpower.Flow.prepare_cached c in
  Alcotest.(check bool) "same prepared result (no ATPG re-run)" true (p1 == p2);
  (* a re-parsed copy of the same netlist hits too: the memo is keyed
     by content, not physical identity *)
  let c' =
    Netlist.Bench_parser.parse_string ~name:"swp"
      (Netlist.Bench_writer.to_string c)
  in
  Alcotest.(check bool) "content-keyed" true (Scanpower.Flow.prepare_cached c' == p1);
  (* evaluating twice off one prepared must be deterministic: evaluate
     does not mutate its input *)
  let a = Scanpower.Flow.evaluate ~seed:5 p1 in
  let b = Scanpower.Flow.evaluate ~seed:5 p1 in
  Alcotest.(check int) "evaluate is repeatable on a shared prepare" 0
    (compare a b)

let suite =
  [
    Alcotest.test_case "cache hit and miss" `Quick check_cache_hit_and_miss;
    Alcotest.test_case "cache corruption recovery" `Quick
      check_cache_corruption_recovery;
    Alcotest.test_case "sequential pool" `Quick check_sequential;
    Alcotest.test_case "parallel values" `Quick check_parallel_values;
    Alcotest.test_case "crash isolation and retry" `Quick
      check_crash_isolation_and_retry;
    Alcotest.test_case "timeout" `Quick check_timeout;
    Alcotest.test_case "job error reported" `Quick check_job_error_reported;
    Alcotest.test_case "runner cache round" `Quick check_runner_cache_round;
    Alcotest.test_case "comparison json roundtrip" `Quick
      check_comparison_json_roundtrip;
    Alcotest.test_case "sweep golden + cache" `Quick
      check_sweep_golden_and_cache;
    Alcotest.test_case "prepare_cached reuse" `Quick check_prepare_cached_reuse;
  ]
