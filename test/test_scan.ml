(* Scan chain and the cycle-accurate scan power simulator: shift
   mechanics, response correctness (the power techniques must not
   change test behaviour), and the power-ordering properties the paper
   claims. *)

open Netlist

let mapped name = Techmap.Mapper.map (Circuits.by_name name)

let s27m = lazy (mapped "s27")

let check_chain_construction () =
  let c = Lazy.force s27m in
  let chain = Scan.Scan_chain.natural c in
  Alcotest.(check int) "length" 3 (Scan.Scan_chain.length chain);
  let cells = Scan.Scan_chain.cells chain in
  Array.iteri
    (fun pos id ->
      Alcotest.(check int) "position_of inverse" pos
        (Scan.Scan_chain.position_of chain id))
    cells

let check_chain_reorder_validation () =
  let c = Lazy.force s27m in
  let dffs = Circuit.dffs c in
  let reversed = Array.of_list (List.rev (Array.to_list dffs)) in
  let chain = Scan.Scan_chain.of_order c reversed in
  Alcotest.(check int) "cell 0 is last dff" dffs.(2) (Scan.Scan_chain.cell_at chain 0);
  Alcotest.check_raises "wrong length"
    (Invalid_argument "Scan_chain.of_order: wrong length") (fun () ->
      ignore (Scan.Scan_chain.of_order c [| dffs.(0) |]));
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Scan_chain.of_order: not a permutation of the flip-flops")
    (fun () ->
      ignore (Scan.Scan_chain.of_order c [| dffs.(0); dffs.(0); dffs.(1) |]))

let check_shift_in_sequence () =
  let c = Lazy.force s27m in
  let chain = Scan.Scan_chain.natural c in
  let target = [| true; false; true |] in
  let seq = Scan.Scan_chain.shift_in_sequence chain target in
  (* replay the shift register and confirm the chain lands on target *)
  let state = Array.make 3 false in
  List.iter
    (fun bit ->
      for j = 2 downto 1 do
        state.(j) <- state.(j - 1)
      done;
      state.(0) <- bit)
    seq;
  Alcotest.(check (array bool)) "lands on target" target state

let test_vectors c n seed =
  Atpg.Pattern_gen.random_vectors ~seed ~count:n c

(* The central functional-safety claim: input-control and the proposed
   multiplexed structure change nothing about what the test observes —
   capture responses are identical to traditional scan. *)
let check_policies_preserve_responses () =
  let c = Lazy.force s27m in
  let chain = Scan.Scan_chain.natural c in
  let vectors = test_vectors c 25 5 in
  let base =
    Scan.Scan_sim.responses c chain Scan.Scan_sim.traditional ~vectors
  in
  let ic_policy =
    { Scan.Scan_sim.pi_during_shift = Some [| true; false; true; false |];
      forced_pseudo = []; hold_previous_capture = false }
  in
  let with_ic = Scan.Scan_sim.responses c chain ic_policy ~vectors in
  Alcotest.(check bool) "input control same responses" true (base = with_ic);
  let forced = [ ((Circuit.dffs c).(0), true); ((Circuit.dffs c).(2), false) ] in
  let prop_policy =
    { Scan.Scan_sim.pi_during_shift = Some [| false; false; true; true |];
      forced_pseudo = forced; hold_previous_capture = false }
  in
  let with_mux = Scan.Scan_sim.responses c chain prop_policy ~vectors in
  Alcotest.(check bool) "muxed structure same responses" true (base = with_mux)

let check_responses_match_seq_sim () =
  (* capture responses = next-state function of (pi, shifted state) *)
  let c = Lazy.force s27m in
  let chain = Scan.Scan_chain.natural c in
  let vectors = test_vectors c 10 6 in
  let responses =
    Scan.Scan_sim.responses c chain Scan.Scan_sim.traditional ~vectors
  in
  List.iter2
    (fun vec resp ->
      let n_pi = Array.length (Circuit.inputs c) in
      let pi = Array.sub vec 0 n_pi in
      let st = Array.sub vec n_pi (Array.length vec - n_pi) in
      let sim = Sim.Seq_sim.create ~init_state:st c in
      let _ = Sim.Seq_sim.step sim pi in
      (* seq sim state order = Circuit.dffs order = chain order here *)
      Alcotest.(check (array bool)) "capture = next state" (Sim.Seq_sim.state sim) resp)
    vectors responses

let check_cycle_counting () =
  let c = Lazy.force s27m in
  let chain = Scan.Scan_chain.natural c in
  let vectors = test_vectors c 4 7 in
  let m = Scan.Scan_sim.measure c chain Scan.Scan_sim.traditional ~vectors in
  (* 4 vectors x (3 shifts + 1 capture) + 3 final shift-out cycles *)
  Alcotest.(check int) "total cycles" ((4 * 4) + 3) m.Scan.Scan_sim.cycles;
  Alcotest.(check int) "shift cycles" ((4 * 3) + 3) m.Scan.Scan_sim.shift_cycles

let check_empty_test_set () =
  let c = Lazy.force s27m in
  let chain = Scan.Scan_chain.natural c in
  let m = Scan.Scan_sim.measure c chain Scan.Scan_sim.traditional ~vectors:[] in
  Alcotest.(check int) "no toggles" 0 m.Scan.Scan_sim.total_toggles

let check_forced_non_dff_rejected () =
  let c = Lazy.force s27m in
  let chain = Scan.Scan_chain.natural c in
  let pi = (Circuit.inputs c).(0) in
  Alcotest.check_raises "forced PI"
    (Invalid_argument "Scan_sim: forced node is not a flip-flop") (fun () ->
      ignore
        (Scan.Scan_sim.measure c chain
           { Scan.Scan_sim.pi_during_shift = None; forced_pseudo = [ (pi, true) ]; hold_previous_capture = false }
           ~vectors:(test_vectors c 2 8)))

let check_policy_validation () =
  let c = Lazy.force s27m in
  let chain = Scan.Scan_chain.natural c in
  Alcotest.check_raises "bad PI pattern length"
    (Invalid_argument "Scan_sim: shift PI pattern length mismatch") (fun () ->
      ignore
        (Scan.Scan_sim.measure c chain
           { Scan.Scan_sim.pi_during_shift = Some [| true |]; forced_pseudo = []; hold_previous_capture = false }
           ~vectors:(test_vectors c 2 8)))

let check_muxing_everything_minimizes_dynamic () =
  (* Forcing every pseudo-input and holding the PIs leaves only the
     capture-edge churn. On a flip-flop-dominated circuit (s382: 21
     cells, so 21 shift cycles between captures) the shift savings must
     win. (On tiny chains like s27's the capture churn can exceed the
     savings — the paper's own s510 row shows the effect as a negative
     improvement vs the input-control baseline.) *)
  let c = mapped "s382" in
  let chain = Scan.Scan_chain.natural c in
  let vectors = test_vectors c 20 9 in
  let trad = Scan.Scan_sim.measure c chain Scan.Scan_sim.traditional ~vectors in
  let all_forced =
    Array.to_list (Circuit.dffs c) |> List.map (fun id -> (id, false))
  in
  let policy =
    {
      Scan.Scan_sim.pi_during_shift =
        Some (Array.make (Array.length (Circuit.inputs c)) false);
      forced_pseudo = all_forced;
      hold_previous_capture = false;
    }
  in
  let quiet = Scan.Scan_sim.measure c chain policy ~vectors in
  Alcotest.(check bool)
    (Printf.sprintf "quiet %d < traditional %d" quiet.Scan.Scan_sim.total_toggles
       trad.Scan.Scan_sim.total_toggles)
    true
    (quiet.Scan.Scan_sim.total_toggles < trad.Scan.Scan_sim.total_toggles)

let check_static_measures_positive () =
  let c = Lazy.force s27m in
  let chain = Scan.Scan_chain.natural c in
  let vectors = test_vectors c 5 10 in
  let m = Scan.Scan_sim.measure c chain Scan.Scan_sim.traditional ~vectors in
  Alcotest.(check bool) "avg static positive" true (m.Scan.Scan_sim.avg_static_uw > 0.0);
  Alcotest.(check bool) "peak >= avg" true
    (m.Scan.Scan_sim.peak_static_uw >= m.Scan.Scan_sim.avg_static_uw -. 1e-9);
  Alcotest.(check bool) "capture static positive" true
    (m.Scan.Scan_sim.avg_capture_static_uw > 0.0)

let prop_responses_policy_invariant =
  QCheck.Test.make ~name:"responses invariant under any shift policy" ~count:10
    (QCheck.make QCheck.Gen.(pair (int_range 0 500) (int_range 1 15)))
    (fun (seed, n_vec) ->
      let c = Lazy.force s27m in
      let chain = Scan.Scan_chain.natural c in
      let rng = Util.Rng.create seed in
      let vectors = test_vectors c n_vec seed in
      let policy =
        {
          Scan.Scan_sim.pi_during_shift =
            (if Util.Rng.bool rng then Some (Util.Rng.bool_array rng 4) else None);
          forced_pseudo =
            Array.to_list (Circuit.dffs c)
            |> List.filter_map (fun id ->
                   if Util.Rng.bool rng then Some (id, Util.Rng.bool rng) else None);
          hold_previous_capture = false;
        }
      in
      Scan.Scan_sim.responses c chain policy ~vectors
      = Scan.Scan_sim.responses c chain Scan.Scan_sim.traditional ~vectors)

let suite =
  [
    Alcotest.test_case "chain construction" `Quick check_chain_construction;
    Alcotest.test_case "chain reorder validation" `Quick check_chain_reorder_validation;
    Alcotest.test_case "shift-in sequence" `Quick check_shift_in_sequence;
    Alcotest.test_case "policies preserve responses" `Quick
      check_policies_preserve_responses;
    Alcotest.test_case "responses match seq sim" `Quick check_responses_match_seq_sim;
    Alcotest.test_case "cycle counting" `Quick check_cycle_counting;
    Alcotest.test_case "empty test set" `Quick check_empty_test_set;
    Alcotest.test_case "forced non-dff rejected" `Quick check_forced_non_dff_rejected;
    Alcotest.test_case "policy validation" `Quick check_policy_validation;
    Alcotest.test_case "muxing everything minimizes dynamic" `Quick
      check_muxing_everything_minimizes_dynamic;
    Alcotest.test_case "static measures positive" `Quick check_static_measures_positive;
    QCheck_alcotest.to_alcotest prop_responses_policy_invariant;
  ]
