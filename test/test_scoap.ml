(* SCOAP testability measures and their effect on PODEM. *)

open Netlist

let check_source_costs () =
  let c = Techmap.Mapper.map (Circuits.s27 ()) in
  let s = Atpg.Scoap.compute c in
  Array.iter
    (fun id ->
      Alcotest.(check int) "cc0 of source" 1 (Atpg.Scoap.cc0 s id);
      Alcotest.(check int) "cc1 of source" 1 (Atpg.Scoap.cc1 s id))
    (Circuit.sources c)

let chain_circuit n =
  (* a -> NOT -> NOT -> ... (n inverters) -> po *)
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.add_input b "a" in
  let rec build prev i =
    if i = n then prev
    else build (Circuit.Builder.add_gate b Gate.Not (Printf.sprintf "i%d" i) [ prev ]) (i + 1)
  in
  let last = build a 0 in
  let _ = Circuit.Builder.add_output b "po" last in
  (Circuit.Builder.build b, n)

let check_controllability_grows_with_depth () =
  let c, n = chain_circuit 6 in
  let s = Atpg.Scoap.compute c in
  let last = Circuit.find c (Printf.sprintf "i%d" (n - 1)) in
  let first = Circuit.find c "i0" in
  Alcotest.(check bool) "deeper costs more" true
    (Atpg.Scoap.cc0 s last > Atpg.Scoap.cc0 s first);
  (* inverter chain: cc0 at depth d = d + 1 *)
  Alcotest.(check int) "exact chain cost" (n + 1) (Atpg.Scoap.cc0 s last)

let check_inverter_swaps_polarity () =
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.add_input b "a" in
  let a2 = Circuit.Builder.add_input b "b" in
  let g = Circuit.Builder.add_gate b Gate.And "g" [ a; a2 ] in
  let inv = Circuit.Builder.add_gate b Gate.Not "inv" [ g ] in
  let _ = Circuit.Builder.add_output b "po" inv in
  let c = Circuit.Builder.build b in
  let s = Atpg.Scoap.compute c in
  (* AND of two inputs: cc1 = 1+1+1 = 3, cc0 = 1+1 = 2 *)
  Alcotest.(check int) "and cc1" 3 (Atpg.Scoap.cc1 s g);
  Alcotest.(check int) "and cc0" 2 (Atpg.Scoap.cc0 s g);
  Alcotest.(check int) "not swaps" 4 (Atpg.Scoap.cc0 s inv);
  Alcotest.(check int) "not swaps (1)" 3 (Atpg.Scoap.cc1 s inv)

let check_observability_zero_at_endpoints () =
  let c = Techmap.Mapper.map (Circuits.s27 ()) in
  let s = Atpg.Scoap.compute c in
  Array.iter
    (fun id ->
      Alcotest.(check int) "marker observability" 0 (Atpg.Scoap.observability s id))
    (Circuit.outputs c);
  (* every line of this small circuit can reach an endpoint *)
  Array.iter
    (fun nd ->
      if not (Gate.equal_kind nd.Circuit.kind Gate.Output) then
        Alcotest.(check bool)
          (Printf.sprintf "%s observable" nd.Circuit.name)
          true
          (Atpg.Scoap.observability s nd.Circuit.id < 1_000_000))
    (Circuit.nodes c)

let check_observability_decreases_toward_outputs () =
  let c, n = chain_circuit 6 in
  let s = Atpg.Scoap.compute c in
  let first = Circuit.find c "i0" in
  let last = Circuit.find c (Printf.sprintf "i%d" (n - 1)) in
  Alcotest.(check bool) "closer to output, easier to observe" true
    (Atpg.Scoap.observability s last < Atpg.Scoap.observability s first)

let check_input_picking () =
  let b = Circuit.Builder.create () in
  let easy = Circuit.Builder.add_input b "easy" in
  let a2 = Circuit.Builder.add_input b "x" in
  let a3 = Circuit.Builder.add_input b "y" in
  let hard_src = Circuit.Builder.add_gate b Gate.And "hard" [ a2; a3 ] in
  let g = Circuit.Builder.add_gate b Gate.And "g" [ easy; hard_src ] in
  let _ = Circuit.Builder.add_output b "po" g in
  let c = Circuit.Builder.build b in
  let s = Atpg.Scoap.compute c in
  Alcotest.(check (option int)) "hardest to set 1" (Some hard_src)
    (Atpg.Scoap.hardest_input s c g Logic.One);
  Alcotest.(check (option int)) "easiest to set 1" (Some easy)
    (Atpg.Scoap.easiest_input s c g Logic.One)

let check_guided_podem_still_sound () =
  let c = Techmap.Mapper.map (Circuits.s27 ()) in
  let guide = Atpg.Scoap.compute c in
  let rng = Util.Rng.create 6 in
  List.iter
    (fun f ->
      match Atpg.Podem.generate ~guide c f with
      | Atpg.Podem.Test cube ->
        let filled = Atpg.Compaction.fill_random rng cube in
        Alcotest.(check bool)
          (Printf.sprintf "guided test detects %s" (Atpg.Fault.to_string c f))
          true
          (Atpg.Podem.detects c f filled)
      | Atpg.Podem.Untestable | Atpg.Podem.Aborted -> ())
    (Atpg.Fault.collapsed_faults c)

let check_guided_matches_unguided_testability () =
  let c = Techmap.Mapper.map (Circuits.s27 ()) in
  let guide = Atpg.Scoap.compute c in
  List.iter
    (fun f ->
      let to_tag = function
        | Atpg.Podem.Test _ -> `T
        | Atpg.Podem.Untestable -> `U
        | Atpg.Podem.Aborted -> `A
      in
      match (to_tag (Atpg.Podem.generate c f), to_tag (Atpg.Podem.generate ~guide c f)) with
      | `T, `U | `U, `T ->
        Alcotest.failf "testability flipped for %s" (Atpg.Fault.to_string c f)
      | (`T | `U | `A), _ -> ())
    (Atpg.Fault.collapsed_faults c)

let suite =
  [
    Alcotest.test_case "source costs" `Quick check_source_costs;
    Alcotest.test_case "controllability grows with depth" `Quick
      check_controllability_grows_with_depth;
    Alcotest.test_case "inverter swaps polarity" `Quick check_inverter_swaps_polarity;
    Alcotest.test_case "observability at endpoints" `Quick
      check_observability_zero_at_endpoints;
    Alcotest.test_case "observability decreases toward outputs" `Quick
      check_observability_decreases_toward_outputs;
    Alcotest.test_case "input picking" `Quick check_input_picking;
    Alcotest.test_case "guided podem sound" `Quick check_guided_podem_still_sound;
    Alcotest.test_case "guided matches unguided testability" `Quick
      check_guided_matches_unguided_testability;
  ]
