(* The serving layer: protocol round-trip and robustness (torn lines,
   oversized requests, garbage JSON, unknown kinds, disconnects — a
   structured error or a clean close, never a daemon crash), the warm
   machine registry's LRU accounting, golden bit-identity between the
   daemon and the one-shot flow, admission control (overloaded,
   deadline), event streaming, fork isolation, and SIGTERM drain.

   Live-daemon tests fork a real [Daemon.run] child on a fresh socket
   and drive it through [Client] — the same code path as `scanpower
   serve` / `scanpower client` minus cmdliner. *)

module P = Scanpower_server.Protocol
module D = Scanpower_server.Daemon
module C = Scanpower_server.Client
module R = Scanpower_server.Registry
module E = Scanpower_errors
module Json = Telemetry.Json
module Flow = Scanpower.Flow
module Sweep = Scanpower.Sweep
module FI = Runner.Fault_inject

let sock_path =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sp-test-%d-%d.sock" (Unix.getpid ()) !counter)

let start_daemon ?(configure = fun c -> c) () =
  let socket = sock_path () in
  let config = configure { D.default_config with D.socket; log = None } in
  flush stdout;
  flush stderr;
  let pid = Unix.fork () in
  if pid = 0 then begin
    (try ignore (D.run ~config ()) with _ -> ());
    Unix._exit 0
  end;
  (pid, socket)

let stop_daemon pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  snd (Unix.waitpid [] pid)

let with_daemon ?configure fn =
  let pid, socket = start_daemon ?configure () in
  Fun.protect
    ~finally:(fun () -> ignore (stop_daemon pid))
    (fun () -> fn socket)

let with_client socket fn =
  let client = C.connect ~retry_for_s:10.0 socket in
  Fun.protect ~finally:(fun () -> C.close client) (fun () -> fn client)

let small ?(gates = 30) name seed =
  Circuits.generate
    { Circuits.name; n_pi = 5; n_po = 3; n_ff = 4; n_gates = gates; seed }

let expect_value label = function
  | Ok v -> v
  | Error e -> Alcotest.fail (label ^ ": " ^ E.to_string e)

let expect_code label code = function
  | Ok _ -> Alcotest.fail (label ^ ": expected an error")
  | Error e ->
    Alcotest.(check string) label (E.code_to_string code)
      (E.code_to_string e.E.code);
    e

(* ------------------------------------------------------------------ *)
(* protocol: wire round-trip and field validation                      *)
(* ------------------------------------------------------------------ *)

let check_protocol_roundtrip () =
  let reqs =
    [
      P.make ~id:"a" ~circuit:"s27" P.Flow;
      P.make ~id:"b" ~bench:"INPUT(a)\n" ~name:"t" ~seed:7 ~engine:"scalar"
        ~deadline_s:1.5 ~stream:true ~isolation:P.Fork_isolation P.Sweep_point;
      P.make ~id:"c" P.Health;
      P.make ~id:"d" ~circuit:"s344" ~seed:3 P.Atpg;
    ]
  in
  List.iter
    (fun r ->
      match P.parse_request (P.request_to_json r) with
      | Ok r' ->
        Alcotest.(check bool) ("round-trip " ^ r.P.id) true (r = r')
      | Error e -> Alcotest.fail (E.to_string e))
    reqs;
  (* wire form survives the JSON printer too *)
  List.iter
    (fun r ->
      let s = Json.to_string (P.request_to_json r) in
      match Json.of_string s with
      | Ok j -> (
        match P.parse_request j with
        | Ok r' -> Alcotest.(check bool) "printed round-trip" true (r = r')
        | Error e -> Alcotest.fail (E.to_string e))
      | Error m -> Alcotest.fail m)
    reqs

let check_protocol_validation () =
  let parse s =
    match Json.of_string s with
    | Ok j -> P.parse_request j
    | Error m -> Alcotest.fail m
  in
  ignore
    (expect_code "unknown kind" E.Usage
       (parse {|{"id":"x","kind":"frobnicate"}|}));
  ignore
    (expect_code "missing circuit" E.Usage (parse {|{"id":"x","kind":"flow"}|}));
  ignore (expect_code "missing id" E.Usage (parse {|{"kind":"health"}|}));
  ignore
    (expect_code "bad engine" E.Usage
       (parse {|{"id":"x","kind":"flow","circuit":"s27","engine":"quantum"}|}));
  ignore
    (expect_code "negative deadline" E.Usage
       (parse {|{"id":"x","kind":"health","deadline_s":-1}|}));
  ignore (expect_code "non-object" E.Usage (P.parse_request (Json.Int 3)))

(* ------------------------------------------------------------------ *)
(* registry: LRU accounting                                            *)
(* ------------------------------------------------------------------ *)

let check_registry_lru () =
  let reg = R.create ~capacity:2 () in
  let circuits = List.init 3 (fun i -> small (Printf.sprintf "r%d" i) (600 + i)) in
  let get c =
    let key = Flow.prepare_key c in
    R.find_or_prepare reg ~key ~name:(Netlist.Circuit.name c) (fun () ->
        Flow.prepare c)
  in
  let c0, c1, c2 =
    match circuits with [ a; b; c ] -> (a, b, c) | _ -> assert false
  in
  ignore (get c0);
  ignore (get c1);
  Alcotest.(check bool) "warm hit" true (snd (get c0));
  (* inserting a third evicts the least recently used: c1 *)
  ignore (get c2);
  let s = R.stats reg in
  Alcotest.(check int) "capacity held" 2 s.R.s_entries;
  Alcotest.(check int) "one eviction" 1 s.R.s_evictions;
  Alcotest.(check bool) "c0 still resident" true (snd (get c0));
  Alcotest.(check bool) "c1 was evicted" false (snd (get c1));
  let s = R.stats reg in
  Alcotest.(check int) "hits counted" 2 s.R.s_hits;
  Alcotest.(check int) "misses counted" 4 s.R.s_misses;
  (* a failing build inserts nothing *)
  (match
     R.find_or_prepare reg ~key:"bad" ~name:"bad" (fun () -> failwith "boom")
   with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "build failure must propagate");
  Alcotest.(check int) "no half-entry" 2 (R.stats reg).R.s_entries

(* ------------------------------------------------------------------ *)
(* flow prepare registry stats (satellite: gauges + LRU bound)         *)
(* ------------------------------------------------------------------ *)

let check_flow_prepare_stats () =
  Flow.clear_prepared ();
  Flow.set_prepare_capacity 2;
  Telemetry.reset ();
  Telemetry.enable ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      Flow.set_prepare_capacity 0;
      Flow.clear_prepared ())
    (fun () ->
      let circuits =
        List.init 3 (fun i -> small (Printf.sprintf "fp%d" i) (700 + i))
      in
      List.iter (fun c -> ignore (Flow.prepare_cached c)) circuits;
      List.iter (fun c -> ignore (Flow.prepare_cached c)) circuits;
      let s = Flow.prepare_stats () in
      Alcotest.(check int) "bounded to capacity" 2 s.Flow.p_entries;
      (* second pass: c0 was evicted by c2's insert, and re-preparing
         it evicts c1, and so on — every second-pass lookup misses *)
      Alcotest.(check int) "misses" 6 s.Flow.p_misses;
      Alcotest.(check int) "hits" 0 s.Flow.p_hits;
      Alcotest.(check int) "evictions" 4 s.Flow.p_evictions;
      let gauge name =
        match Telemetry.Gauge.find name with
        | Some v -> int_of_float v
        | None -> Alcotest.fail ("missing gauge " ^ name)
      in
      Alcotest.(check int) "entries gauge" 2
        (gauge "flow.prepare_registry.entries");
      Alcotest.(check int) "misses gauge" 6
        (gauge "flow.prepare_registry.misses");
      Alcotest.(check int) "evictions gauge" 4
        (gauge "flow.prepare_registry.evictions");
      (* unbounded + warm hit path *)
      Flow.set_prepare_capacity 0;
      List.iter (fun c -> ignore (Flow.prepare_cached c)) circuits;
      List.iter (fun c -> ignore (Flow.prepare_cached c)) circuits;
      let s = Flow.prepare_stats () in
      Alcotest.(check int) "unbounded keeps all" 3 s.Flow.p_entries;
      Alcotest.(check bool) "warm hits counted" true (s.Flow.p_hits >= 4);
      Alcotest.(check int) "hits gauge tracks" s.Flow.p_hits
        (gauge "flow.prepare_registry.hits"))

(* ------------------------------------------------------------------ *)
(* golden: daemon flow ≡ one-shot Flow.run_benchmark                   *)
(* ------------------------------------------------------------------ *)

let check_golden_bit_identity () =
  with_daemon (fun socket ->
      with_client socket (fun client ->
          let reference =
            Sweep.comparison_to_json
              (Flow.run_benchmark ~seed:7 (Circuits.by_name "s27"))
          in
          let ask i =
            let v =
              expect_value "flow"
                (C.rpc client
                   (P.make ~id:(Printf.sprintf "g%d" i) ~circuit:"s27" ~seed:7
                      P.Flow))
            in
            match Json.member "comparison" v with
            | Some c -> (c, Json.member "registry_hit" v)
            | None -> Alcotest.fail "flow value lacks a comparison"
          in
          let cold, hit0 = ask 0 in
          let warm, hit1 = ask 1 in
          Alcotest.(check bool) "cold misses the registry" true
            (hit0 = Some (Json.Bool false));
          Alcotest.(check bool) "second request hits the registry" true
            (hit1 = Some (Json.Bool true));
          Alcotest.(check bool) "cold result ≡ one-shot CLI" true
            (Json.equal reference cold);
          Alcotest.(check bool) "warm result ≡ one-shot CLI" true
            (Json.equal reference warm);
          (* sweep-point goes through the real Sweep machinery *)
          let direct =
            Sweep.run ~jobs:1 ~capture_telemetry:false
              (Sweep.points ~seeds:[ 5 ] [ Circuits.by_name "s27" ])
          in
          let direct_cmp =
            match (List.hd direct.Sweep.results).Sweep.comparison with
            | Ok c -> Sweep.comparison_to_json c
            | Error m -> Alcotest.fail m
          in
          let v =
            expect_value "sweep-point"
              (C.rpc client
                 (P.make ~id:"sp" ~circuit:"s27" ~seed:5 P.Sweep_point))
          in
          (match Json.member "comparison" v with
          | Some c ->
            Alcotest.(check bool) "sweep-point ≡ direct Sweep.run" true
              (Json.equal direct_cmp c)
          | None -> Alcotest.fail "sweep-point value lacks a comparison")))

(* ------------------------------------------------------------------ *)
(* robustness: hostile input never kills the daemon                    *)
(* ------------------------------------------------------------------ *)

let check_protocol_robustness () =
  with_daemon
    ~configure:(fun c -> { c with D.max_request_bytes = 4096 })
    (fun socket ->
      with_client socket (fun client ->
          (* malformed JSON: structured parse error, connection stays up *)
          C.send_raw client "this is not json {{{";
          (match C.read_response client ~id:"whatever" with
          | Error e ->
            Alcotest.(check string) "garbage is a parse error" "parse"
              (E.code_to_string e.E.code)
          | Ok _ -> Alcotest.fail "garbage accepted");
          (* unknown kind: usage error echoing the id *)
          C.send_raw client {|{"id":"u1","kind":"frobnicate"}|};
          ignore
            (expect_code "unknown kind" E.Usage
               (C.read_response client ~id:"u1"));
          (* unparsable netlist shipped inline: structured, not fatal *)
          let bad =
            expect_code "bad inline netlist" E.Parse
              (C.rpc client
                 (P.make ~id:"b1" ~bench:"G5 = NAND(" ~name:"bad" P.Flow))
          in
          Alcotest.(check bool) "names the stage" true
            (bad.E.stage = "bench_parser");
          (* oversized line: rejected with a validation error naming
             the cap, and the connection is dropped — an unbounded
             buffer is a memory hole, not a recoverable frame *)
          let big =
            Printf.sprintf {|{"id":"big","kind":"flow","bench":"%s"}|}
              (String.make 8000 '#')
          in
          C.send_raw client big;
          (match C.read_response client ~id:"big" with
          | Error e ->
            Alcotest.(check string) "oversized is validation" "validation"
              (E.code_to_string e.E.code)
          | Ok _ -> Alcotest.fail "oversized accepted");
          (match C.read_response client ~id:"never" with
          | Error e ->
            Alcotest.(check string) "oversized conn dropped" "io"
              (E.code_to_string e.E.code)
          | Ok _ -> Alcotest.fail "oversized connection kept serving"));
      (* the daemon itself keeps serving fresh connections *)
      with_client socket (fun client ->
          let v =
            expect_value "daemon survives it all"
              (C.rpc client (P.make ~id:"h" P.Health))
          in
          Alcotest.(check bool) "daemon healthy" true
            (Json.member "status" v = Some (Json.String "ok"))));
  (* torn line + disconnect mid-request: daemon unaffected *)
  with_daemon (fun socket ->
      let c1 = C.connect ~retry_for_s:10.0 socket in
      C.send_raw c1 {|{"id":"t1","kind":"flow","circ|};
      (* no newline: the fragment dies with the connection *)
      C.close c1;
      let c2 = C.connect ~retry_for_s:10.0 socket in
      C.send c2 (P.make ~id:"d1" ~circuit:"s344" P.Flow);
      (* hang up before the answer: the daemon must shrug *)
      C.close c2;
      with_client socket (fun client ->
          let v =
            expect_value "health after torn + disconnect"
              (C.rpc client (P.make ~id:"h2" P.Health))
          in
          Alcotest.(check bool) "daemon still serving" true
            (Json.member "status" v = Some (Json.String "ok"))))

(* ------------------------------------------------------------------ *)
(* admission control: overloaded and deadline                          *)
(* ------------------------------------------------------------------ *)

let check_overloaded () =
  with_daemon
    ~configure:(fun c -> { c with D.max_queue = 0 })
    (fun socket ->
      with_client socket (fun client ->
          let e =
            expect_code "queue full" E.Overloaded
              (C.rpc client (P.make ~id:"o1" ~circuit:"s27" P.Flow))
          in
          Alcotest.(check int) "overloaded maps to exit 7" 7
            (E.exit_code e.E.code);
          Alcotest.(check string) "admission stage" "server.admission"
            e.E.stage))

let check_deadline_expired_in_queue () =
  with_daemon (fun socket ->
      with_client socket (fun client ->
          (* pipeline: the deadlined request waits behind a real flow,
             so its (tiny) budget is guaranteed to have expired by
             dequeue time *)
          C.send client (P.make ~id:"first" ~circuit:"s344" P.Flow);
          C.send client
            (P.make ~id:"late" ~circuit:"s27" ~deadline_s:1e-6 P.Flow);
          (match C.read_response client ~id:"first" with
          | Ok _ -> ()
          | Error e -> Alcotest.fail (E.to_string e));
          let e =
            expect_code "expired while queued" E.Deadline
              (C.read_response client ~id:"late")
          in
          Alcotest.(check int) "deadline maps to exit 8" 8
            (E.exit_code e.E.code)))

(* ------------------------------------------------------------------ *)
(* streaming: telemetry-bus events as tagged lines                     *)
(* ------------------------------------------------------------------ *)

let check_streaming_events () =
  with_daemon (fun socket ->
      with_client socket (fun client ->
          let events = ref [] in
          let on_event j = events := j :: !events in
          let _v =
            expect_value "streamed sweep-point"
              (C.rpc ~on_event client
                 (P.make ~id:"s1" ~circuit:"s27" ~stream:true P.Sweep_point))
          in
          let names =
            List.filter_map
              (fun line ->
                match Json.member "event" line with
                | Some ev -> (
                  match Json.member "event" ev with
                  | Some (Json.String name) -> Some name
                  | _ -> None)
                | None -> None)
              !events
          in
          List.iter
            (fun expected ->
              Alcotest.(check bool)
                (expected ^ " streamed") true (List.mem expected names))
            [ "server.request_started"; "sweep.job_started";
              "sweep.job_finished"; "server.request_finished" ];
          (* a non-streaming request gets no event lines *)
          let count_before = List.length !events in
          let _v =
            expect_value "quiet flow"
              (C.rpc ~on_event client (P.make ~id:"q1" ~circuit:"s27" P.Flow))
          in
          Alcotest.(check int) "no events without stream" count_before
            (List.length !events)))

(* ------------------------------------------------------------------ *)
(* fork isolation: crash containment, identical results                *)
(* ------------------------------------------------------------------ *)

let check_fork_isolation () =
  with_daemon (fun socket ->
      with_client socket (fun client ->
          let inline_v =
            expect_value "inline"
              (C.rpc client (P.make ~id:"i1" ~circuit:"s27" ~seed:9 P.Flow))
          in
          let fork_v =
            expect_value "forked"
              (C.rpc client
                 (P.make ~id:"f1" ~circuit:"s27" ~seed:9
                    ~isolation:P.Fork_isolation P.Flow))
          in
          let cmp v =
            match Json.member "comparison" v with
            | Some c -> c
            | None -> Alcotest.fail "no comparison"
          in
          Alcotest.(check bool) "forked ≡ inline" true
            (Json.equal (cmp inline_v) (cmp fork_v))))

let check_fork_isolation_contains_crashes () =
  let crash = { FI.seed = 42; rates = [ (FI.Child_crash, 1.0) ] } in
  (* the daemon inherits the armed injector at fork time; its isolated
     workers then die on every attempt *)
  FI.with_spec (Some crash) (fun () ->
      with_daemon (fun socket ->
          with_client socket (fun client ->
              let e =
                expect_code "crashed worker is a structured error" E.Runtime
                  (C.rpc client
                     (P.make ~id:"c1" ~circuit:"s27"
                        ~isolation:P.Fork_isolation P.Flow))
              in
              Alcotest.(check bool) "mentions the crash" true
                (let msg = e.E.message in
                 let needle = "crash" in
                 let n = String.length needle and h = String.length msg in
                 let rec go i =
                   i + n <= h && (String.sub msg i n = needle || go (i + 1))
                 in
                 go 0);
              (* the daemon itself is unharmed — and inline requests
                 never touch the worker path *)
              let v =
                expect_value "inline still works"
                  (C.rpc client (P.make ~id:"c2" ~circuit:"s27" P.Flow))
              in
              Alcotest.(check bool) "daemon alive" true
                (Json.member "registry_hit" v <> None))))

(* ------------------------------------------------------------------ *)
(* SIGTERM drain                                                       *)
(* ------------------------------------------------------------------ *)

let check_sigterm_drains () =
  let pid, socket = start_daemon () in
  let client = C.connect ~retry_for_s:10.0 socket in
  (* make sure the daemon is actually serving before we kill it *)
  (match C.rpc client (P.make ~id:"h" P.Health) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (E.to_string e));
  C.send client (P.make ~id:"w1" ~circuit:"s344" P.Flow);
  (* give the loop a beat to admit the request, then pull the plug *)
  Unix.sleepf 0.3;
  Unix.kill pid Sys.sigterm;
  (match C.read_response client ~id:"w1" with
  | Ok v ->
    Alcotest.(check bool) "drained request still answered" true
      (Json.member "comparison" v <> None)
  | Error e -> Alcotest.fail ("drain lost the request: " ^ E.to_string e));
  (* after the drain: connection closed, clean exit, socket unlinked *)
  (match C.read_response client ~id:"nothing-else" with
  | Error e ->
    Alcotest.(check string) "connection closed after drain" "io"
      (E.code_to_string e.E.code)
  | Ok _ -> Alcotest.fail "unexpected extra response");
  C.close client;
  (match stop_daemon pid with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "daemon must exit 0 after SIGTERM");
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket)

let suite =
  [
    Alcotest.test_case "protocol wire round-trip" `Quick
      check_protocol_roundtrip;
    Alcotest.test_case "protocol field validation" `Quick
      check_protocol_validation;
    Alcotest.test_case "registry LRU accounting" `Quick check_registry_lru;
    Alcotest.test_case "flow prepare registry stats + gauges" `Quick
      check_flow_prepare_stats;
    Alcotest.test_case "golden: daemon ≡ one-shot flow" `Quick
      check_golden_bit_identity;
    Alcotest.test_case "protocol robustness against hostile input" `Quick
      check_protocol_robustness;
    Alcotest.test_case "overloaded admission (exit 7)" `Quick check_overloaded;
    Alcotest.test_case "deadline expiry in queue (exit 8)" `Quick
      check_deadline_expired_in_queue;
    Alcotest.test_case "streamed events tagged by request" `Quick
      check_streaming_events;
    Alcotest.test_case "fork isolation matches inline" `Quick
      check_fork_isolation;
    Alcotest.test_case "fork isolation contains crashes" `Quick
      check_fork_isolation_contains_crashes;
    Alcotest.test_case "sigterm drains and exits clean" `Quick
      check_sigterm_drains;
  ]
