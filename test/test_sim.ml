(* Simulators: ternary propagation, event-driven toggle counting,
   sequential stepping; cross-validation between the three. *)

open Netlist

let logic = Alcotest.testable Logic.pp Logic.equal

let s27 = lazy (Circuits.s27 ())

let check_ternary_known_vector () =
  let c = Lazy.force s27 in
  (* all inputs 0, state 000: from the s27 netlist,
     G14 = NOT(G0)=1, G12 = NOR(G1,G7)=1, G13=NAND(G2,G12)=1,
     G8=AND(G14,G6)=0, G15=OR(G12,G8)=1, G16=OR(G3,G8)=0,
     G9=NAND(G16,G15)=1, G10=NOR(G14,G11)=0, G11=NOR(G5,G9)=0, G17=NOT(G11)=1 *)
  let values =
    Sim.Ternary_sim.eval c ~inputs:(fun _ -> Logic.Zero) ~state:(fun _ -> Logic.Zero)
  in
  let v name = values.(Circuit.find c name) in
  Alcotest.check logic "G14" Logic.One (v "G14");
  Alcotest.check logic "G8" Logic.Zero (v "G8");
  Alcotest.check logic "G11" Logic.Zero (v "G11");
  Alcotest.check logic "G17" Logic.One (v "G17");
  Alcotest.check (Alcotest.array logic) "outputs" [| Logic.One |]
    (Sim.Ternary_sim.outputs_of c values)

let check_x_propagation () =
  let c = Lazy.force s27 in
  (* all X in gives X out *)
  let values =
    Sim.Ternary_sim.eval c ~inputs:(fun _ -> Logic.X) ~state:(fun _ -> Logic.X)
  in
  Alcotest.check logic "output X" Logic.X (Sim.Ternary_sim.outputs_of c values).(0);
  (* but a controlling input pins some nodes: G0=0 forces G14=1 *)
  let values =
    Sim.Ternary_sim.eval c
      ~inputs:(fun i -> if i = 0 then Logic.Zero else Logic.X)
      ~state:(fun _ -> Logic.X)
  in
  Alcotest.check logic "G14 definite" Logic.One values.(Circuit.find c "G14")

let check_eval_vector_validation () =
  let c = Lazy.force s27 in
  Alcotest.check_raises "wrong pi count"
    (Invalid_argument "Ternary_sim.eval_vector: wrong number of input values")
    (fun () -> ignore (Sim.Ternary_sim.eval_vector c [| Logic.X |] [| Logic.X; Logic.X; Logic.X |]))

(* Event simulator agrees with a fresh full ternary evaluation after
   arbitrary source-change sequences. *)
let prop_event_sim_matches_full_eval =
  QCheck.Test.make ~name:"event sim equals full re-evaluation" ~count:30
    (QCheck.make QCheck.Gen.(pair (int_range 0 1000) (int_range 1 30)))
    (fun (seed, steps) ->
      let c = Techmap.Mapper.map (Lazy.force s27) in
      let rng = Util.Rng.create seed in
      let sim = Sim.Event_sim.create c in
      let sources = Circuit.sources c in
      let current = Array.make (Circuit.node_count c) false in
      Sim.Event_sim.init sim (fun _ -> false);
      let ok = ref true in
      for _ = 1 to steps do
        (* flip a random subset of sources *)
        let changes = ref [] in
        Array.iter
          (fun id ->
            if Util.Rng.bool rng then begin
              current.(id) <- not current.(id);
              changes := (id, current.(id)) :: !changes
            end)
          sources;
        ignore (Sim.Event_sim.set_sources sim !changes);
        (* reference: full ternary evaluation *)
        let reference =
          Sim.Ternary_sim.eval c
            ~inputs:(fun i -> Logic.of_bool current.((Circuit.inputs c).(i)))
            ~state:(fun i -> Logic.of_bool current.((Circuit.dffs c).(i)))
        in
        let actual = Sim.Event_sim.values sim in
        Array.iteri
          (fun id v ->
            match Logic.to_bool reference.(id) with
            | Some b -> if b <> v then ok := false
            | None -> ())
          actual
      done;
      !ok)

let check_toggle_counting () =
  let c = Techmap.Mapper.map (Lazy.force s27) in
  let sim = Sim.Event_sim.create c in
  Sim.Event_sim.init sim (fun _ -> false);
  Alcotest.(check int) "no toggles after init" 0 (Sim.Event_sim.total_toggles sim);
  let g0 = Circuit.find c "G0" in
  let caused = Sim.Event_sim.set_sources sim [ (g0, true) ] in
  Alcotest.(check bool) "some toggles" true (caused > 0);
  Alcotest.(check int) "total matches" caused (Sim.Event_sim.total_toggles sim);
  (* flipping back doubles the count *)
  let caused2 = Sim.Event_sim.set_sources sim [ (g0, false) ] in
  Alcotest.(check int) "same cone both ways" caused caused2;
  (* no-change set_sources costs nothing *)
  let caused3 = Sim.Event_sim.set_sources sim [ (g0, false) ] in
  Alcotest.(check int) "no-op" 0 caused3;
  Sim.Event_sim.reset_counts sim;
  Alcotest.(check int) "reset" 0 (Sim.Event_sim.total_toggles sim)

let check_event_sim_rejects_non_source () =
  let c = Techmap.Mapper.map (Lazy.force s27) in
  let sim = Sim.Event_sim.create c in
  Sim.Event_sim.init sim (fun _ -> false);
  let gate =
    Array.to_list (Circuit.nodes c)
    |> List.find (fun nd -> Gate.is_logic nd.Circuit.kind)
  in
  Alcotest.check_raises "non-source"
    (Invalid_argument "Event_sim.set_sources: not a source node") (fun () ->
      ignore (Sim.Event_sim.set_sources sim [ (gate.Circuit.id, true) ]))

let check_blocking_limits_toggles () =
  (* a controlling side input suppresses downstream activity:
     c = NAND(a, b); holding b=0 pins c=1, so toggling a cannot
     propagate past c *)
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.add_input b "a" in
  let bb = Circuit.Builder.add_input b "b" in
  let g = Circuit.Builder.add_gate b Gate.Nand "g" [ a; bb ] in
  let h = Circuit.Builder.add_gate b Gate.Not "h" [ g ] in
  let _ = Circuit.Builder.add_output b "po" h in
  let c = Circuit.Builder.build b in
  let sim = Sim.Event_sim.create c in
  Sim.Event_sim.init sim (fun _ -> false);
  let caused = Sim.Event_sim.set_sources sim [ (a, true) ] in
  Alcotest.(check int) "only the source toggles" 1 caused

let check_seq_sim_state_evolution () =
  let c = Lazy.force s27 in
  let sim = Sim.Seq_sim.create c in
  Alcotest.(check (array bool)) "initial state" [| false; false; false |]
    (Sim.Seq_sim.state sim);
  let v = [| false; false; false; false |] in
  let _ = Sim.Seq_sim.step sim v in
  (* next state: G10=0, G11=0, G13=1 (from the hand evaluation above) *)
  Alcotest.(check (array bool)) "state after step" [| false; false; true |]
    (Sim.Seq_sim.state sim);
  (* outputs_only must not clock *)
  let st = Sim.Seq_sim.state sim in
  let _ = Sim.Seq_sim.outputs_only sim v in
  Alcotest.(check (array bool)) "unclocked" st (Sim.Seq_sim.state sim)

let check_seq_sim_run_length () =
  let c = Lazy.force s27 in
  let sim = Sim.Seq_sim.create c in
  let vs = List.init 5 (fun _ -> [| false; true; false; true |]) in
  Alcotest.(check int) "five responses" 5 (List.length (Sim.Seq_sim.run sim vs))

let suite =
  [
    Alcotest.test_case "ternary known vector" `Quick check_ternary_known_vector;
    Alcotest.test_case "X propagation" `Quick check_x_propagation;
    Alcotest.test_case "eval_vector validation" `Quick check_eval_vector_validation;
    QCheck_alcotest.to_alcotest prop_event_sim_matches_full_eval;
    Alcotest.test_case "toggle counting" `Quick check_toggle_counting;
    Alcotest.test_case "event sim rejects non-source" `Quick
      check_event_sim_rejects_non_source;
    Alcotest.test_case "blocking limits toggles" `Quick check_blocking_limits_toggles;
    Alcotest.test_case "seq sim state evolution" `Quick check_seq_sim_state_evolution;
    Alcotest.test_case "seq sim run length" `Quick check_seq_sim_run_length;
  ]
