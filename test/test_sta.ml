(* Static timing analysis: arrival/required consistency, critical path
   structure, and equivalence of the naive and slack-based AddMUX
   feasibility questions. *)

open Netlist

let mapped name = Techmap.Mapper.map (Circuits.by_name name)

let check_positive_critical_delay () =
  let c = mapped "s27" in
  let t = Sta.analyze c in
  Alcotest.(check bool) "positive" true (Sta.critical_delay t > 0.0)

let check_arrivals_monotone_along_fanin () =
  let c = mapped "s27" in
  let t = Sta.analyze c in
  Array.iter
    (fun nd ->
      if Gate.is_logic nd.Circuit.kind then
        Array.iter
          (fun f ->
            Alcotest.(check bool) "arrival grows through gates" true
              (Sta.arrival t nd.Circuit.id > Sta.arrival t f))
          nd.Circuit.fanins)
    (Circuit.nodes c)

let check_slack_nonnegative () =
  let c = mapped "s344" in
  let t = Sta.analyze c in
  Array.iter
    (fun nd ->
      Alcotest.(check bool)
        (Printf.sprintf "slack of %s" nd.Circuit.name)
        true
        (Sta.slack t nd.Circuit.id >= -1e-6))
    (Circuit.nodes c)

let check_critical_path_is_zero_slack () =
  let c = mapped "s344" in
  let t = Sta.analyze c in
  let path = Sta.critical_path t in
  Alcotest.(check bool) "path nonempty" true (path <> []);
  List.iter
    (fun id ->
      let nd = Circuit.node c id in
      match nd.Circuit.kind with
      | Gate.Output | Gate.Dff -> ()
      | Gate.Input | Gate.Buf | Gate.Not | Gate.And | Gate.Nand | Gate.Or
      | Gate.Nor | Gate.Xor | Gate.Xnor ->
        Alcotest.(check bool)
          (Printf.sprintf "zero slack on %s" nd.Circuit.name)
          true
          (Float.abs (Sta.slack t id) < 1e-6))
    path

let check_critical_path_is_connected () =
  let c = mapped "s344" in
  let t = Sta.analyze c in
  let path = Sta.critical_path t in
  let rec pairs = function
    | a :: (b :: _ as rest) ->
      let nb = Circuit.node c b in
      Alcotest.(check bool) "consecutive nodes connected" true
        (Array.exists (fun f -> f = a) nb.Circuit.fanins);
      pairs rest
    | [ _ ] | [] -> ()
  in
  pairs path

let check_endpoint_arrival_matches_critical () =
  let c = mapped "s344" in
  let t = Sta.analyze c in
  let eps = Sta.critical_endpoints t in
  Alcotest.(check bool) "has endpoints" true (eps <> [])

let check_penalty_increases_delay_only_without_slack () =
  let c = mapped "s344" in
  let t = Sta.analyze c in
  let base = Sta.critical_delay t in
  Array.iter
    (fun dff ->
      let penalty = Techlib.Cell.mux2_delay_penalty in
      let naive = Sta.delay_with_penalty c ~penalties:[ (dff, penalty) ] in
      let fits_naive = naive <= base +. 1e-6 in
      let fits_slack = Sta.fits_without_slowdown t ~source:dff ~penalty in
      Alcotest.(check bool)
        (Printf.sprintf "agree on %s" (Circuit.node c dff).Circuit.name)
        fits_naive fits_slack)
    (Circuit.dffs c)

(* The naive/slack agreement must hold across many generated circuits
   and penalty magnitudes: this is the claim that lets AddMUX run in
   O(1) per candidate. *)
let prop_naive_equals_slack =
  QCheck.Test.make ~name:"naive re-STA equals slack test" ~count:15
    (QCheck.make QCheck.Gen.(triple (int_range 1 500) (int_range 3 12) (int_range 5 60)))
    (fun (seed, n_ff, penalty_i) ->
      let c =
        Circuits.generate
          {
            Circuits.name = "sta-prop";
            n_pi = 5;
            n_po = 3;
            n_ff;
            n_gates = 80;
            seed;
          }
      in
      let t = Sta.analyze c in
      let base = Sta.critical_delay t in
      let penalty = float_of_int penalty_i in
      Array.for_all
        (fun dff ->
          let naive =
            Sta.delay_with_penalty c ~penalties:[ (dff, penalty) ]
            <= base +. 1e-6
          in
          naive = Sta.fits_without_slowdown t ~source:dff ~penalty)
        (Circuit.dffs c))

let check_zero_penalty_changes_nothing () =
  let c = mapped "s27" in
  let t = Sta.analyze c in
  let dff = (Circuit.dffs c).(0) in
  Alcotest.check (Alcotest.float 1e-9) "no penalty, same delay"
    (Sta.critical_delay t)
    (Sta.delay_with_penalty c ~penalties:[ (dff, 0.0) ])

let check_penalty_rejects_gate_node () =
  let c = mapped "s27" in
  let gate =
    Array.to_list (Circuit.nodes c)
    |> List.find (fun nd -> Gate.is_logic nd.Circuit.kind)
  in
  Alcotest.check_raises "non-source"
    (Invalid_argument "Sta.delay_with_penalty: not a source node") (fun () ->
      ignore (Sta.delay_with_penalty c ~penalties:[ (gate.Circuit.id, 1.0) ]))

let check_unmapped_rejected () =
  let c = Circuits.s27 () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Sta.analyze c);
       false
     with Invalid_argument _ -> true)

let check_gate_delay_components () =
  let c = mapped "s27" in
  let t = Sta.analyze c in
  Array.iter
    (fun nd ->
      if Gate.is_logic nd.Circuit.kind then begin
        let d = Sta.gate_delay t nd.Circuit.id in
        Alcotest.(check bool) "gate delay positive" true (d > 0.0);
        (* delay must equal the cell model at the node's load *)
        match Techmap.Mapper.cell_of_node c nd.Circuit.id with
        | Some cell ->
          Alcotest.check (Alcotest.float 1e-9) "matches cell model"
            (Techlib.Cell.delay cell ~load:(Sta.load t nd.Circuit.id))
            d
        | None -> Alcotest.fail "mapped circuit must have cells"
      end)
    (Circuit.nodes c)

let suite =
  [
    Alcotest.test_case "positive critical delay" `Quick check_positive_critical_delay;
    Alcotest.test_case "arrivals monotone" `Quick check_arrivals_monotone_along_fanin;
    Alcotest.test_case "slack nonnegative" `Quick check_slack_nonnegative;
    Alcotest.test_case "critical path zero slack" `Quick
      check_critical_path_is_zero_slack;
    Alcotest.test_case "critical path connected" `Quick
      check_critical_path_is_connected;
    Alcotest.test_case "critical endpoints" `Quick
      check_endpoint_arrival_matches_critical;
    Alcotest.test_case "naive vs slack on s344" `Quick
      check_penalty_increases_delay_only_without_slack;
    QCheck_alcotest.to_alcotest prop_naive_equals_slack;
    Alcotest.test_case "zero penalty" `Quick check_zero_penalty_changes_nothing;
    Alcotest.test_case "penalty rejects gates" `Quick check_penalty_rejects_gate_node;
    Alcotest.test_case "unmapped rejected" `Quick check_unmapped_rejected;
    Alcotest.test_case "gate delay components" `Quick check_gate_delay_components;
  ]
