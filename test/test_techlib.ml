(* Transistor model, cells and leakage tables: Figure 2 calibration and
   the physical properties the algorithms rely on. *)

let approx = Alcotest.float 1e-9

let check_nand2_matches_figure2 () =
  let cell = Techlib.Cell.Nand 2 in
  let expect = Techlib.Leakage_table.paper_nand2_na in
  for s = 0 to 3 do
    Alcotest.check approx "figure 2" expect.(s)
      (Techlib.Leakage_table.leakage_na cell ~state:s)
  done

let check_figure2_values () =
  let st = Techlib.Leakage_table.state_of_string in
  let l s = Techlib.Leakage_table.leakage_na (Techlib.Cell.Nand 2) ~state:(st s) in
  Alcotest.check approx "00" 78.0 (l "00");
  Alcotest.check approx "01" 73.0 (l "01");
  Alcotest.check approx "10" 264.0 (l "10");
  Alcotest.check approx "11" 408.0 (l "11")

let check_raw_model_close_to_paper () =
  (* the analytic model should land in the right regime even before
     calibration: within a factor of two of every Figure 2 entry *)
  for s = 0 to 3 do
    let raw = Techlib.Leakage_table.raw_leakage_na (Techlib.Cell.Nand 2) ~state:s in
    let target = Techlib.Leakage_table.paper_nand2_na.(s) in
    Alcotest.(check bool)
      (Printf.sprintf "state %d raw=%.1f target=%.1f" s raw target)
      true
      (raw > target /. 2.0 && raw < target *. 2.0)
  done

let all_cells = Techlib.Cell.all

let check_tables_positive () =
  List.iter
    (fun cell ->
      for s = 0 to Techlib.Leakage_table.n_states cell - 1 do
        Alcotest.(check bool) "positive" true
          (Techlib.Leakage_table.leakage_na cell ~state:s > 0.0)
      done)
    all_cells

let check_stack_effect () =
  (* the all-off stack (all NAND inputs 0) leaks far less than the
     fully conducting state (all inputs 1, maximum gate tunnelling plus
     every pull-up device off across the rail) -- the paper's own
     Figure 2 shows exactly this 78 vs 408 spread *)
  List.iter
    (fun k ->
      let cell = Techlib.Cell.Nand k in
      let all_off = Techlib.Leakage_table.leakage_na cell ~state:0 in
      let all_on =
        Techlib.Leakage_table.leakage_na cell ~state:((1 lsl k) - 1)
      in
      Alcotest.(check bool)
        (Printf.sprintf "NAND%d all-off %.1f << all-on %.1f" k all_off all_on)
        true
        (all_off *. 2.0 < all_on))
    [ 2; 3; 4 ]

let check_input_order_asymmetry () =
  (* the property gate input reordering exploits: some single-one
     states of a NAND differ in leakage *)
  let cell = Techlib.Cell.Nand 2 in
  let st = Techlib.Leakage_table.state_of_string in
  Alcotest.(check bool) "01 differs from 10" true
    (Techlib.Leakage_table.leakage_na cell ~state:(st "01")
    <> Techlib.Leakage_table.leakage_na cell ~state:(st "10"))

let check_extreme_states () =
  let cell = Techlib.Cell.Nand 2 in
  Alcotest.(check int) "min is 01"
    (Techlib.Leakage_table.state_of_string "01")
    (Techlib.Leakage_table.min_leakage_state cell);
  Alcotest.(check int) "max is 11"
    (Techlib.Leakage_table.state_of_string "11")
    (Techlib.Leakage_table.max_leakage_state cell)

let check_state_packing () =
  Alcotest.(check int) "of_values" 5
    (Techlib.Leakage_table.state_of_values [| true; false; true |]);
  Alcotest.(check string) "roundtrip" "101"
    (Techlib.Leakage_table.string_of_state (Techlib.Cell.Nand 3) 5)

let check_state_bounds () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Leakage_table: state out of range") (fun () ->
      ignore (Techlib.Leakage_table.leakage_na Techlib.Cell.Inv ~state:(-1)));
  Alcotest.check_raises "too large"
    (Invalid_argument "Leakage_table: state out of range") (fun () ->
      ignore (Techlib.Leakage_table.leakage_na Techlib.Cell.Inv ~state:2))

let check_cell_of_gate () =
  let open Netlist in
  Alcotest.(check bool) "not -> inv" true
    (Techlib.Cell.of_gate Gate.Not ~fanin:1 = Some Techlib.Cell.Inv);
  Alcotest.(check bool) "nand3" true
    (Techlib.Cell.of_gate Gate.Nand ~fanin:3 = Some (Techlib.Cell.Nand 3));
  Alcotest.(check bool) "nand5 unsupported" true
    (Techlib.Cell.of_gate Gate.Nand ~fanin:5 = None);
  Alcotest.(check bool) "and unsupported" true
    (Techlib.Cell.of_gate Gate.And ~fanin:2 = None)

let check_delay_monotone_in_load () =
  List.iter
    (fun cell ->
      Alcotest.(check bool) "more load, more delay" true
        (Techlib.Cell.delay cell ~load:10.0 > Techlib.Cell.delay cell ~load:1.0))
    all_cells

let check_subthreshold_behaviour () =
  let p = Techlib.Transistor.default_nmos in
  let off = Techlib.Transistor.subthreshold_current p ~vgs:0.0 ~vds:0.9 ~vsb:0.0 in
  (* DIBL: less drain bias, less current *)
  let off_low =
    Techlib.Transistor.subthreshold_current p ~vgs:0.0 ~vds:0.45 ~vsb:0.0
  in
  Alcotest.(check bool) "DIBL" true (off > off_low);
  (* body effect: reverse body bias reduces current *)
  let off_body =
    Techlib.Transistor.subthreshold_current p ~vgs:0.0 ~vds:0.9 ~vsb:0.3
  in
  Alcotest.(check bool) "body effect" true (off > off_body)

let check_gate_tunneling_behaviour () =
  let p = Techlib.Transistor.default_nmos in
  let g v = Techlib.Transistor.gate_tunneling_current p ~vox:v in
  Alcotest.check approx "no bias no current" 0.0 (g 0.0);
  Alcotest.(check bool) "monotone" true (g 0.9 > g 0.45 && g 0.45 > g 0.1)

let check_stack_solver () =
  let mk on = { Techlib.Transistor.dev = Techlib.Transistor.default_nmos; gate_on = on } in
  let one_off = Techlib.Transistor.stack_current [ mk false ] ~v_rail:0.9 in
  let two_off = Techlib.Transistor.stack_current [ mk false; mk false ] ~v_rail:0.9 in
  Alcotest.(check bool) "stack effect in solver" true (two_off < one_off /. 2.0);
  let with_on = Techlib.Transistor.stack_current [ mk true; mk false ] ~v_rail:0.9 in
  Alcotest.(check bool) "on device barely restricts" true (with_on > two_off);
  Alcotest.check_raises "empty stack"
    (Invalid_argument "Transistor.stack_current: empty stack") (fun () ->
      ignore (Techlib.Transistor.stack_current [] ~v_rail:0.9))

let check_stack_node_voltages () =
  let mk on = { Techlib.Transistor.dev = Techlib.Transistor.default_nmos; gate_on = on } in
  let vs = Techlib.Transistor.stack_node_voltages [ mk true; mk false ] ~v_rail:0.9 in
  Alcotest.(check int) "one internal node" 1 (Array.length vs);
  Alcotest.(check bool) "within rails" true (vs.(0) >= 0.0 && vs.(0) <= 0.9)

let suite =
  [
    Alcotest.test_case "NAND2 equals Figure 2" `Quick check_nand2_matches_figure2;
    Alcotest.test_case "Figure 2 values" `Quick check_figure2_values;
    Alcotest.test_case "raw model near paper" `Quick check_raw_model_close_to_paper;
    Alcotest.test_case "tables positive" `Quick check_tables_positive;
    Alcotest.test_case "stack effect" `Quick check_stack_effect;
    Alcotest.test_case "input-order asymmetry" `Quick check_input_order_asymmetry;
    Alcotest.test_case "extreme states" `Quick check_extreme_states;
    Alcotest.test_case "state packing" `Quick check_state_packing;
    Alcotest.test_case "state bounds" `Quick check_state_bounds;
    Alcotest.test_case "cell of gate" `Quick check_cell_of_gate;
    Alcotest.test_case "delay monotone in load" `Quick check_delay_monotone_in_load;
    Alcotest.test_case "subthreshold behaviour" `Quick check_subthreshold_behaviour;
    Alcotest.test_case "gate tunnelling behaviour" `Quick
      check_gate_tunneling_behaviour;
    Alcotest.test_case "stack solver" `Quick check_stack_solver;
    Alcotest.test_case "stack node voltages" `Quick check_stack_node_voltages;
  ]
