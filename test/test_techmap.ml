(* Technology mapping: functional equivalence and library compliance. *)

open Netlist

let mapped_library_only c =
  Array.for_all
    (fun nd ->
      match nd.Circuit.kind with
      | Gate.Input | Gate.Dff | Gate.Output -> true
      | Gate.Not -> true
      | Gate.Nand | Gate.Nor ->
        let k = Array.length nd.Circuit.fanins in
        k >= 2 && k <= Techlib.Cell.max_fanin
      | Gate.Buf | Gate.And | Gate.Or | Gate.Xor | Gate.Xnor -> false)
    (Circuit.nodes c)

(* Sequential co-simulation of original vs mapped on random stimuli. *)
let equivalent ?(vectors = 50) ~seed c c' =
  let n_pi = Array.length (Circuit.inputs c) in
  let sim = Sim.Seq_sim.create c and sim' = Sim.Seq_sim.create c' in
  let rng = Util.Rng.create seed in
  let ok = ref true in
  for _ = 1 to vectors do
    let v = Util.Rng.bool_array rng n_pi in
    if Sim.Seq_sim.step sim v <> Sim.Seq_sim.step sim' v then ok := false
  done;
  !ok

let check_s27_maps_and_matches () =
  let c = Circuits.s27 () in
  let c' = Techmap.Mapper.map c in
  Alcotest.(check bool) "library only" true (mapped_library_only c');
  Alcotest.(check bool) "is_mapped" true (Techmap.Mapper.is_mapped c');
  Alcotest.(check bool) "was not mapped before" false (Techmap.Mapper.is_mapped c);
  Alcotest.(check bool) "equivalent" true (equivalent ~seed:11 c c')

let wide_gate_circuit kind =
  let b = Circuit.Builder.create ~name:"wide" () in
  let pis = List.init 9 (fun i -> Circuit.Builder.add_input b (Printf.sprintf "i%d" i)) in
  let g = Circuit.Builder.add_gate b kind "wide_gate" pis in
  let _ = Circuit.Builder.add_output b "po" g in
  Circuit.Builder.build b

let check_wide_gates_decompose kind () =
  let c = wide_gate_circuit kind in
  let c' = Techmap.Mapper.map c in
  Alcotest.(check bool) "library only" true (mapped_library_only c');
  Alcotest.(check bool) "equivalent" true (equivalent ~seed:3 c c')

let xor_chain_circuit () =
  let b = Circuit.Builder.create ~name:"xors" () in
  let a = Circuit.Builder.add_input b "a" in
  let b2 = Circuit.Builder.add_input b "b" in
  let cc = Circuit.Builder.add_input b "c" in
  let x1 = Circuit.Builder.add_gate b Gate.Xor "x1" [ a; b2; cc ] in
  let x2 = Circuit.Builder.add_gate b Gate.Xnor "x2" [ x1; a ] in
  let _ = Circuit.Builder.add_output b "po" x2 in
  Circuit.Builder.build b

let check_xor_expansion () =
  let c = xor_chain_circuit () in
  let c' = Techmap.Mapper.map c in
  Alcotest.(check bool) "library only" true (mapped_library_only c');
  Alcotest.(check bool) "equivalent" true (equivalent ~seed:4 c c')

let buffer_circuit () =
  let b = Circuit.Builder.create ~name:"bufs" () in
  let a = Circuit.Builder.add_input b "a" in
  let b1 = Circuit.Builder.add_gate b Gate.Buf "b1" [ a ] in
  let b2 = Circuit.Builder.add_gate b Gate.Buf "b2" [ b1 ] in
  let g = Circuit.Builder.add_gate b Gate.Nand "g" [ b2; a ] in
  let _ = Circuit.Builder.add_output b "po" g in
  Circuit.Builder.build b

let check_buffers_dissolved () =
  let c' = Techmap.Mapper.map (buffer_circuit ()) in
  Alcotest.(check bool) "no buffers left" true
    (Array.for_all
       (fun nd -> not (Gate.equal_kind nd.Circuit.kind Gate.Buf))
       (Circuit.nodes c'));
  Alcotest.(check bool) "equivalent" true (equivalent ~seed:5 (buffer_circuit ()) c')

let check_idempotent_on_mapped () =
  let c = Techmap.Mapper.map (Circuits.s27 ()) in
  Alcotest.(check bool) "mapped is mapped" true (Techmap.Mapper.is_mapped c);
  let c' = Techmap.Mapper.map c in
  Alcotest.(check int) "same gate count" (Circuit.gate_count c)
    (Circuit.gate_count c');
  Alcotest.(check bool) "equivalent" true (equivalent ~seed:6 c c')

let check_cell_of_node () =
  let c = Techmap.Mapper.map (Circuits.s27 ()) in
  Array.iter
    (fun nd ->
      if Gate.is_logic nd.Circuit.kind then
        Alcotest.(check bool) "has cell" true
          (Techmap.Mapper.cell_of_node c nd.Circuit.id <> None)
      else
        Alcotest.(check bool) "no cell" true
          (Techmap.Mapper.cell_of_node c nd.Circuit.id = None))
    (Circuit.nodes c)

let check_cell_of_node_rejects_unmapped () =
  let c = Circuits.s27 () in
  (* s27 contains AND/OR gates *)
  let and_gate =
    Array.to_list (Circuit.nodes c)
    |> List.find (fun nd -> Gate.equal_kind nd.Circuit.kind Gate.And)
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Techmap.Mapper.cell_of_node c and_gate.Circuit.id);
       false
     with Invalid_argument _ -> true)

let prop_mapping_preserves_function =
  QCheck.Test.make ~name:"mapping preserves sequential behaviour" ~count:12
    (QCheck.make
       QCheck.Gen.(pair (int_range 3 8) (int_range 15 80)))
    (fun (n_pi, n_gates) ->
      (* generated circuits are already mapped, so wrap odd gates in:
         use a parsed s27 variant plus generated structure via bench
         text manipulation is overkill; instead randomize via seeds *)
      let c =
        Circuits.generate
          {
            Circuits.name = "prop";
            n_pi;
            n_po = 2;
            n_ff = 3;
            n_gates;
            seed = n_gates * 31;
          }
      in
      let c' = Techmap.Mapper.map c in
      mapped_library_only c' && equivalent ~vectors:30 ~seed:n_gates c c')

let check_loads_positive () =
  let c = Techmap.Mapper.map (Circuits.s27 ()) in
  Array.iter
    (fun nd ->
      let load = Techmap.Loads.node_load c nd.Circuit.id in
      if
        Array.length nd.Circuit.fanouts > 0
        && not (Gate.equal_kind nd.Circuit.kind Gate.Output)
      then Alcotest.(check bool) "driving nodes have load" true (load > 0.0)
      else Alcotest.(check bool) "non-negative" true (load >= 0.0))
    (Circuit.nodes c)

let check_load_counts_duplicate_pins () =
  let b = Circuit.Builder.create () in
  let a = Circuit.Builder.add_input b "a" in
  let g = Circuit.Builder.add_gate b Gate.Nand "g" [ a; a ] in
  let _ = Circuit.Builder.add_output b "po" g in
  let c = Circuit.Builder.build b in
  let expected =
    (2.0 *. Techlib.Cell.input_cap (Techlib.Cell.Nand 2))
    +. (2.0 *. Techlib.Cell.wire_cap_per_fanout)
  in
  Alcotest.check (Alcotest.float 1e-9) "both pins counted" expected
    (Techmap.Loads.node_load c a)

let suite =
  [
    Alcotest.test_case "s27 maps and matches" `Quick check_s27_maps_and_matches;
    Alcotest.test_case "wide AND decomposes" `Quick
      (check_wide_gates_decompose Gate.And);
    Alcotest.test_case "wide NAND decomposes" `Quick
      (check_wide_gates_decompose Gate.Nand);
    Alcotest.test_case "wide OR decomposes" `Quick
      (check_wide_gates_decompose Gate.Or);
    Alcotest.test_case "wide NOR decomposes" `Quick
      (check_wide_gates_decompose Gate.Nor);
    Alcotest.test_case "xor expansion" `Quick check_xor_expansion;
    Alcotest.test_case "buffers dissolved" `Quick check_buffers_dissolved;
    Alcotest.test_case "idempotent on mapped" `Quick check_idempotent_on_mapped;
    Alcotest.test_case "cell_of_node" `Quick check_cell_of_node;
    Alcotest.test_case "cell_of_node rejects unmapped" `Quick
      check_cell_of_node_rejects_unmapped;
    Alcotest.test_case "loads positive" `Quick check_loads_positive;
    Alcotest.test_case "load counts duplicate pins" `Quick
      check_load_counts_duplicate_pins;
    QCheck_alcotest.to_alcotest prop_mapping_preserves_function;
  ]
