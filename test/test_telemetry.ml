(* Telemetry subsystem: span nesting and timing, the counter/gauge
   registry, JSON snapshot round-tripping, and the core guarantee that
   instrumentation only observes — flow results are bit-identical with
   telemetry on or off, and identical to the pre-telemetry seed. *)

module T = Telemetry
module J = Telemetry.Json

let with_telemetry fn =
  T.reset ();
  T.enable ();
  Fun.protect
    ~finally:(fun () ->
      T.disable ();
      T.reset ())
    fn

(* ---------- spans ---------- *)

let check_disabled_is_noop () =
  T.reset ();
  Alcotest.(check bool) "off by default here" false (T.enabled ());
  let r = T.Span.with_ ~name:"ghost" (fun () -> 41 + 1) in
  Alcotest.(check int) "transparent" 42 r;
  Alcotest.(check int) "no span recorded" 0 (List.length (T.Span.roots ()));
  let c = T.Counter.make "test.noop" in
  T.Counter.inc c;
  T.Counter.add c 10;
  Alcotest.(check int) "counter increments dropped" 0 (T.Counter.get c)

let check_span_nesting_and_timing () =
  with_telemetry (fun () ->
      let spin = ref 0.0 in
      T.Span.with_ ~name:"outer" (fun () ->
          T.Span.with_ ~name:"first" (fun () ->
              for i = 1 to 10_000 do
                spin := !spin +. float_of_int i
              done);
          T.Span.with_ ~name:"second" (fun () -> ignore (Sys.opaque_identity !spin)));
      match T.Span.roots () with
      | [ outer ] ->
        Alcotest.(check string) "root name" "outer" outer.T.Span.name;
        let kids = T.Span.children outer in
        Alcotest.(check (list string)) "children in execution order"
          [ "first"; "second" ]
          (List.map (fun s -> s.T.Span.name) kids);
        let d_outer = T.Span.duration_s outer in
        Alcotest.(check bool) "outer duration non-negative" true (d_outer >= 0.0);
        List.iter
          (fun kid ->
            let d = T.Span.duration_s kid in
            Alcotest.(check bool) "child duration non-negative" true (d >= 0.0);
            Alcotest.(check bool) "child starts after parent" true
              (kid.T.Span.start >= outer.T.Span.start);
            Alcotest.(check bool) "child within parent" true
              (d <= d_outer +. 1e-9))
          kids;
        Alcotest.(check bool) "children sum within parent" true
          (List.fold_left (fun acc k -> acc +. T.Span.duration_s k) 0.0 kids
          <= d_outer +. 1e-9)
      | roots -> Alcotest.failf "expected one root, got %d" (List.length roots))

let check_span_survives_exception () =
  with_telemetry (fun () ->
      (try
         T.Span.with_ ~name:"root" (fun () ->
             T.Span.with_ ~name:"boom" (fun () -> failwith "expected"))
       with Failure _ -> ());
      match T.Span.find "boom" with
      | None -> Alcotest.fail "span closed by exception should still be recorded"
      | Some s ->
        Alcotest.(check bool) "closed" true (T.Span.duration_s s >= 0.0))

(* ---------- counters and gauges ---------- *)

let check_counter_registry_reset () =
  with_telemetry (fun () ->
      let c = T.Counter.make "test.counter" in
      Alcotest.(check bool) "same handle for same name" true
        (c == T.Counter.make "test.counter");
      T.Counter.inc c;
      T.Counter.add c 5;
      Alcotest.(check int) "accumulated" 6 (T.Counter.get c);
      Alcotest.(check (option int)) "find by name" (Some 6)
        (T.Counter.find "test.counter");
      T.reset ();
      Alcotest.(check int) "reset between runs" 0 (T.Counter.get c);
      Alcotest.(check (option int)) "still registered" (Some 0)
        (T.Counter.find "test.counter"))

let check_gauge () =
  with_telemetry (fun () ->
      let g = T.Gauge.make "test.gauge" in
      Alcotest.(check (option (float 0.0))) "unset" None (T.Gauge.get g);
      T.Gauge.observe_max g 3.0;
      T.Gauge.observe_max g 1.0;
      Alcotest.(check (option (float 1e-12))) "max kept" (Some 3.0) (T.Gauge.get g);
      T.Gauge.set g 0.5;
      Alcotest.(check (option (float 1e-12))) "set overrides" (Some 0.5)
        (T.Gauge.get g))

(* ---------- JSON ---------- *)

let check_json_roundtrip_value () =
  let v =
    J.Obj
      [
        ("name", J.String "s27 \"quoted\" \\ tab\there\nnewline");
        ("count", J.Int 42);
        ("negative", J.Int (-7));
        ("pi", J.Float 3.141592653589793);
        ("tenth", J.Float 0.1);
        ("whole", J.Float 3.0);
        ("tiny", J.Float 1.25e-300);
        ("flag", J.Bool true);
        ("nothing", J.Null);
        ("seq", J.List [ J.Int 1; J.List []; J.Obj []; J.String "" ]);
      ]
  in
  match J.of_string (J.to_string v) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok v' ->
    Alcotest.(check bool) "round-trips exactly" true (J.equal v v');
    Alcotest.(check bool) "member" true
      (J.member "count" v' = Some (J.Int 42))

let check_json_rejects_garbage () =
  List.iter
    (fun s ->
      match J.of_string s with
      | Ok _ -> Alcotest.failf "accepted invalid JSON: %s" s
      | Error _ -> ())
    [ "{"; "[1,"; "nul"; "\"open"; "{\"a\" 1}"; "[1] trailing" ]

let check_snapshot_roundtrip () =
  with_telemetry (fun () ->
      let c = T.Counter.make "test.snapshot.counter" in
      T.Counter.add c 3;
      T.Gauge.set (T.Gauge.make "test.snapshot.gauge") 2.5;
      T.Span.with_ ~name:"snap" (fun () ->
          T.Span.with_ ~name:"inner" (fun () -> ()));
      let snap = T.metrics_snapshot () in
      (match J.of_string (J.to_string snap) with
      | Error e -> Alcotest.failf "snapshot reparse failed: %s" e
      | Ok snap' ->
        Alcotest.(check bool) "snapshot round-trips" true (J.equal snap snap'));
      Alcotest.(check bool) "schema tagged" true
        (J.member "schema" snap = Some (J.String "scanpower.telemetry/1")))

(* ---------- the flow under telemetry ---------- *)

let expected_phases =
  [
    "flow.run_benchmark"; "flow.prepare"; "techmap"; "atpg"; "flow.evaluate";
    "scan_sim.traditional"; "scan_sim.enhanced"; "c_algorithm";
    "scan_sim.input_control"; "mux_select"; "observability";
    "controlled_pattern"; "ivc"; "reorder"; "scan_sim.proposed";
  ]

let check_flow_phase_tree () =
  with_telemetry (fun () ->
      let _ = Scanpower.Flow.run_benchmark (Circuits.s27 ()) in
      List.iter
        (fun name ->
          match T.Span.find name with
          | Some s ->
            Alcotest.(check bool)
              (name ^ " has a duration")
              true
              (T.Span.duration_s s >= 0.0)
          | None -> Alcotest.failf "phase %s missing from span tree" name)
        expected_phases;
      Alcotest.(check bool) "ivc trials counted" true
        (match T.Counter.find "core.ivc.trials" with
        | Some n -> n > 0
        | None -> false);
      Alcotest.(check bool) "podem backtracks registered" true
        (T.Counter.find "atpg.podem.backtracks" <> None);
      Alcotest.(check bool) "scan sim cycles counted" true
        (match T.Counter.find "scan.sim.cycles" with
        | Some n -> n > 0
        | None -> false))

let check_flow_bit_identical_on_off () =
  T.disable ();
  T.reset ();
  let off = Scanpower.Flow.run_benchmark (Circuits.s27 ()) in
  let on = with_telemetry (fun () -> Scanpower.Flow.run_benchmark (Circuits.s27 ())) in
  Alcotest.(check bool) "comparison identical with telemetry on vs off" true
    (off = on)

(* Golden values captured from the pre-telemetry seed build (s344,
   default seed 42, telemetry disabled). Hex float literals are exact:
   any drift — however small — means the flow's numbers moved. The
   values pin the event-driven reference engine; the packed engine is
   checked against it (exactly for toggles/dynamic, to accumulation
   order for statics) by the packed-sim suite. *)
let check_s344_identical_to_seed () =
  T.disable ();
  T.reset ();
  let cmp =
    Scanpower.Flow.run_benchmark ~engine:Scan.Scan_sim.Scalar
      (Circuits.by_name "s344")
  in
  let f = Alcotest.testable (fun fmt x -> Format.fprintf fmt "%h" x)
      (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
  in
  Alcotest.(check int) "n_vectors" 35 cmp.Scanpower.Flow.n_vectors;
  Alcotest.(check int) "n_dffs" 15 cmp.Scanpower.Flow.n_dffs;
  Alcotest.(check int) "n_muxable" 14 cmp.Scanpower.Flow.n_muxable;
  Alcotest.(check int) "blocked_gates" 2 cmp.Scanpower.Flow.blocked_gates;
  Alcotest.(check int) "failed_gates" 0 cmp.Scanpower.Flow.failed_gates;
  Alcotest.(check int) "reordered_gates" 30 cmp.Scanpower.Flow.reordered_gates;
  let check_technique tag (t : Scanpower.Flow.technique_result) dyn static peak
      toggles =
    Alcotest.check f (tag ^ " dyn/f") dyn t.Scanpower.Flow.dynamic_per_hz_uw;
    Alcotest.check f (tag ^ " static") static t.Scanpower.Flow.static_uw;
    Alcotest.check f (tag ^ " peak static") peak t.Scanpower.Flow.peak_static_uw;
    Alcotest.(check int) (tag ^ " toggles") toggles t.Scanpower.Flow.total_toggles
  in
  check_technique "traditional" cmp.Scanpower.Flow.traditional
    0x1.d9de3c0fa8189p-25 0x1.ee052d0f39c79p+4 0x1.23adaa635ba18p+5 18654;
  check_technique "input_control" cmp.Scanpower.Flow.input_control
    0x1.b4b4b8847d70bp-25 0x1.ec114ab14076ep+4 0x1.21e69437d1ae3p+5 18484;
  check_technique "proposed" cmp.Scanpower.Flow.proposed
    0x1.b69c4ead2a6d3p-27 0x1.9e84c88ceddc6p+4 0x1.1fdc64d51f761p+5 4054;
  check_technique "enhanced_scan" cmp.Scanpower.Flow.enhanced_scan
    0x1.db5e0be0a176ep-28 0x1.fcecb06f1562fp+4 0x1.21e69437d1aa9p+5 2290

(* ---------- histograms ---------- *)

let check_histogram_percentiles () =
  with_telemetry (fun () ->
      let h = T.Histogram.make "test.hist" in
      Alcotest.(check bool) "same handle for same name" true
        (h == T.Histogram.make "test.hist");
      for i = 1 to 100 do
        T.Histogram.observe h (float_of_int i /. 1000.0)
      done;
      let s = T.Histogram.snapshot h in
      Alcotest.(check int) "count" 100 s.T.Histogram.s_count;
      Alcotest.(check (float 1e-12)) "min exact" 0.001 s.T.Histogram.s_min;
      Alcotest.(check (float 1e-12)) "max exact" 0.1 s.T.Histogram.s_max;
      (* log buckets are ~19% wide, so a percentile lands within one
         bucket of the exact order statistic *)
      let near tag expected v =
        if not (v >= expected /. 1.25 && v <= expected *. 1.25) then
          Alcotest.failf "%s: %g not within 25%% of %g" tag v expected
      in
      near "p50" 0.050 s.T.Histogram.p50;
      near "p90" 0.090 s.T.Histogram.p90;
      near "p99" 0.099 s.T.Histogram.p99;
      Alcotest.(check bool) "percentiles monotone" true
        (s.T.Histogram.p50 <= s.T.Histogram.p90
        && s.T.Histogram.p90 <= s.T.Histogram.p99);
      T.Histogram.observe h Float.nan;
      T.Histogram.observe h Float.infinity;
      Alcotest.(check int) "non-finite dropped" 100 (T.Histogram.count h);
      T.Histogram.reset h;
      Alcotest.(check int) "reset" 0 (T.Histogram.count h))

let check_histogram_disabled_dropped () =
  T.disable ();
  T.reset ();
  let h = T.Histogram.make "test.hist.off" in
  T.Histogram.observe h 1.0;
  Alcotest.(check int) "dropped while disabled" 0 (T.Histogram.count h)

let check_histogram_in_snapshot () =
  with_telemetry (fun () ->
      let h = T.Histogram.make "test.hist.snap" in
      T.Histogram.observe h 0.25;
      T.Histogram.observe h 0.5;
      let snap = T.metrics_snapshot () in
      match J.member "histograms" snap with
      | Some (J.Obj hs) -> (
        match List.assoc_opt "test.hist.snap" hs with
        | None -> Alcotest.fail "histogram missing from snapshot"
        | Some hj ->
          Alcotest.(check bool) "count serialized" true
            (J.member "count" hj = Some (J.Int 2));
          (match (J.member "p50" hj, J.member "p99" hj) with
          | Some (J.Float p50), Some (J.Float p99) ->
            Alcotest.(check bool) "p50 positive" true (p50 > 0.0);
            Alcotest.(check bool) "p99 >= p50" true (p99 >= p50)
          | _ -> Alcotest.fail "percentiles missing or non-numeric"))
      | _ -> Alcotest.fail "histograms object missing from snapshot")

(* ---------- string escaping and the chrome exporter ---------- *)

let check_json_string_escaping () =
  let repr s = J.to_string (J.String s) in
  Alcotest.(check string) "quotes and backslashes"
    "\"quote\\\"back\\\\slash\"" (repr "quote\"back\\slash");
  Alcotest.(check string) "named control escapes" "\"a\\tb\\nc\\rd\""
    (repr "a\tb\nc\rd");
  Alcotest.(check string) "other control chars as \\u" "\"x\\u0001y\\u001fz\""
    (repr "x\x01y\x1fz");
  Alcotest.(check string) "utf-8 bytes pass through" "\"s\xc3\xa9quence \xe2\x86\x92\""
    (repr "s\xc3\xa9quence \xe2\x86\x92");
  (* and every one of those survives a round-trip *)
  List.iter
    (fun s ->
      match J.of_string (repr s) with
      | Ok (J.String s') -> Alcotest.(check string) "round-trip" s s'
      | Ok _ -> Alcotest.fail "reparsed as non-string"
      | Error e -> Alcotest.failf "reparse failed: %s" e)
    [
      "quote\"back\\slash"; "a\tb\nc\rd"; "x\x01y\x1fz";
      "s\xc3\xa9quence \xe2\x86\x92"; "\\u0041 literal";
    ]

let check_chrome_trace_export () =
  with_telemetry (fun () ->
      T.Trace_export.clear ();
      T.Span.with_ ~name:"parent"
        ~fields:[ ("circuit", J.String "s27 \"quoted\\name\"") ] (fun () ->
          T.Span.with_ ~name:"child" (fun () -> ()));
      (* a synthetic worker snapshot under its own pid, as the job pool
         ships them back over the result pipe *)
      let worker =
        match T.metrics_snapshot () with
        | J.Obj fields ->
          J.Obj
            (List.map
               (fun (k, v) -> if k = "pid" then (k, J.Int 4242) else (k, v))
               fields)
        | _ -> Alcotest.fail "snapshot is not an object"
      in
      T.Trace_export.register ~label:"worker s27" worker;
      let trace = T.chrome_trace () in
      T.Trace_export.clear ();
      (match J.of_string (J.to_string trace) with
      | Error e -> Alcotest.failf "chrome trace does not reparse: %s" e
      | Ok t' ->
        Alcotest.(check bool) "chrome trace round-trips" true (J.equal trace t'));
      match J.member "traceEvents" trace with
      | Some (J.List events) ->
        let pids =
          List.filter_map
            (fun e ->
              match J.member "pid" e with Some (J.Int p) -> Some p | _ -> None)
            events
        in
        Alcotest.(check bool) "own pid present" true
          (List.mem (Unix.getpid ()) pids);
        Alcotest.(check bool) "worker re-parented on its own pid" true
          (List.mem 4242 pids);
        let span_names =
          List.filter_map
            (fun e ->
              match (J.member "ph" e, J.member "name" e) with
              | Some (J.String "X"), Some (J.String n) -> Some n
              | _ -> None)
            events
        in
        Alcotest.(check bool) "parent span exported" true
          (List.mem "parent" span_names);
        Alcotest.(check bool) "child span exported" true
          (List.mem "child" span_names);
        List.iter
          (fun e ->
            match J.member "ph" e with
            | Some (J.String ("X" | "M")) -> ()
            | ph ->
              Alcotest.failf "unexpected event phase %s"
                (match ph with Some p -> J.to_string p | None -> "missing"))
          events
      | _ -> Alcotest.fail "traceEvents array missing")

(* ---------- trace well-formedness on exception paths ---------- *)

let check_trace_wellformed_on_exception () =
  let path = Filename.temp_file "scanpower_trace" ".jsonl" in
  T.reset ();
  T.enable ();
  T.set_trace_file path;
  (try
     T.Span.with_ ~name:"stage" (fun () ->
         T.Span.with_ ~name:"inner" (fun () ->
             Scanpower_errors.raise_error ~code:Scanpower_errors.Runtime
               ~stage:"test" "expected failure"))
   with Scanpower_errors.Error _ -> ());
  T.close_trace ();
  T.disable ();
  T.reset ();
  let lines =
    In_channel.with_open_bin path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  Sys.remove path;
  let count typ =
    List.length
      (List.filter
         (fun l ->
           match J.of_string l with
           | Ok obj -> J.member "type" obj = Some (J.String typ)
           | Error e -> Alcotest.failf "trace line is not JSON (%s): %s" e l)
         lines)
  in
  Alcotest.(check int) "two spans opened" 2 (count "span_start");
  Alcotest.(check int) "every span_start has its span_end" (count "span_start")
    (count "span_end")

(* ---------- span GC attribution ---------- *)

let check_span_gc_attribution () =
  with_telemetry (fun () ->
      T.Span.with_ ~name:"alloc" (fun () ->
          ignore
            (Sys.opaque_identity
               (Array.init 100_000 (fun i -> string_of_int (i * i)))));
      match T.Span.find "alloc" with
      | None -> Alcotest.fail "span missing"
      | Some s ->
        Alcotest.(check bool) "minor allocation attributed" true
          (s.T.Span.minor_words > 0.0);
        Alcotest.(check bool) "collection deltas non-negative" true
          (s.T.Span.minor_collections >= 0 && s.T.Span.major_collections >= 0);
        Alcotest.(check bool) "peak heap recorded" true
          (s.T.Span.top_heap_words > 0);
        (match J.member "gc" (T.Span.to_json s) with
        | Some (J.Obj gc) ->
          Alcotest.(check bool) "gc json carries minor_words" true
            (List.mem_assoc "minor_words" gc)
        | _ -> Alcotest.fail "gc object missing from span json"))

(* ---------- event bus ---------- *)

let check_event_bus () =
  let seen = ref [] in
  let sub = T.Events.subscribe (fun ev -> seen := ev.T.Events.name :: !seen) in
  Alcotest.(check bool) "has subscribers" true (T.Events.has_subscribers ());
  T.Events.emit "alpha" [ ("x", J.Int 1) ];
  (* a throwing subscriber must not break delivery to the others *)
  let bad = T.Events.subscribe (fun _ -> failwith "bad subscriber") in
  T.Events.emit "beta" [];
  T.Events.unsubscribe bad;
  T.Events.unsubscribe sub;
  T.Events.emit "gamma" [];
  Alcotest.(check (list string)) "delivered in order, gamma unseen"
    [ "alpha"; "beta" ] (List.rev !seen);
  Alcotest.(check bool) "all unsubscribed" false (T.Events.has_subscribers ())

let check_event_line_writer () =
  let path = Filename.temp_file "scanpower_events" ".jsonl" in
  let oc = open_out path in
  let sub = T.Events.subscribe (T.Events.line_writer oc) in
  T.Events.emit "sweep.job_finished"
    [ ("job", J.String "s27 seed=1"); ("completed", J.Int 1) ];
  T.Events.unsubscribe sub;
  close_out oc;
  let raw = In_channel.with_open_bin path In_channel.input_all in
  Sys.remove path;
  match J.of_string (String.trim raw) with
  | Error e -> Alcotest.failf "progress line is not JSON: %s" e
  | Ok obj ->
    Alcotest.(check bool) "event name" true
      (J.member "event" obj = Some (J.String "sweep.job_finished"));
    Alcotest.(check bool) "payload field" true
      (J.member "completed" obj = Some (J.Int 1));
    Alcotest.(check bool) "timestamped" true
      (match J.member "ts" obj with Some (J.Float _) -> true | _ -> false)

(* the one NDJSON emission point shared by [sweep --progress] and the
   daemon's response stream: one compact object per line, flushed
   immediately, newline-terminated even for the last line *)
let check_write_json_line_framing () =
  let path = Filename.temp_file "scanpower_lines" ".jsonl" in
  let oc = open_out path in
  let payloads =
    [
      J.Obj [ ("a", J.Int 1) ];
      J.Obj [ ("nested", J.Obj [ ("s", J.String "x\ny") ]) ];
      J.List [ J.Bool true; J.Null ];
    ]
  in
  List.iter (T.Events.write_json_line oc) payloads;
  (* flushed: a second reader sees every full line before close *)
  let raw_before_close = In_channel.with_open_bin path In_channel.input_all in
  close_out oc;
  let raw = In_channel.with_open_bin path In_channel.input_all in
  Sys.remove path;
  Alcotest.(check string) "flushed per line, not at close" raw
    raw_before_close;
  Alcotest.(check bool) "newline-terminated" true
    (String.length raw > 0 && raw.[String.length raw - 1] = '\n');
  let lines = String.split_on_char '\n' (String.sub raw 0 (String.length raw - 1)) in
  Alcotest.(check int) "one line per payload" (List.length payloads)
    (List.length lines);
  List.iter2
    (fun line payload ->
      match J.of_string line with
      | Ok j -> Alcotest.(check bool) "line round-trips" true (J.equal j payload)
      | Error e -> Alcotest.failf "line is not JSON: %s" e)
    lines payloads

(* ---------- sweep progress events ---------- *)

let check_sweep_progress_events () =
  T.disable ();
  T.reset ();
  let events = ref [] in
  let sub = T.Events.subscribe (fun ev -> events := ev :: !events) in
  let finally () =
    T.Events.unsubscribe sub;
    T.disable ();
    T.reset ()
  in
  Fun.protect ~finally (fun () ->
      T.enable ();
      let points =
        Scanpower.Sweep.points ~seeds:[ 1; 2 ] [ Circuits.s27 () ]
      in
      let report =
        Scanpower.Sweep.run ~jobs:1 ~capture_telemetry:false points
      in
      let named n = List.filter (fun ev -> ev.T.Events.name = n) !events in
      let finished = named "sweep.job_finished" @ named "sweep.cache_hit" in
      Alcotest.(check int) "one terminal event per job"
        (List.length report.Scanpower.Sweep.results)
        (List.length finished);
      Alcotest.(check int) "one start per job"
        (List.length points)
        (List.length (named "sweep.job_started"));
      List.iter
        (fun ev ->
          Alcotest.(check bool) "total field" true
            (List.assoc_opt "total" ev.T.Events.fields = Some (J.Int 2));
          match List.assoc_opt "completed" ev.T.Events.fields with
          | Some (J.Int c) ->
            Alcotest.(check bool) "completed within range" true (c >= 0 && c <= 2)
          | _ -> Alcotest.fail "completed field missing")
        !events)

(* ---------- profile table ---------- *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let check_profile_table_s344 () =
  with_telemetry (fun () ->
      let _ = Scanpower.Flow.run_benchmark (Circuits.by_name "s344") in
      match T.Span.find "flow.run_benchmark" with
      | None -> Alcotest.fail "root span missing"
      | Some root ->
        let render ?top () =
          let buf = Buffer.create 4096 in
          let fmt = Format.formatter_of_buffer buf in
          T.Span.pp_profile ?top fmt root;
          Format.pp_print_flush fmt ();
          Buffer.contents buf
        in
        let out = render () in
        (* the header line pins the column order *)
        let header = List.hd (String.split_on_char '\n' out) in
        Alcotest.(check string) "deterministic column order"
          (Printf.sprintf "%-32s %12s %6s %12s %12s %8s %8s" "stage" "ms" "%"
             "minor-mw" "major-mw" "gc-min" "gc-maj")
          header;
        List.iter
          (fun stage ->
            Alcotest.(check bool) ("stage " ^ stage ^ " present") true
              (contains ~needle:stage out))
          [ "flow.run_benchmark"; "flow.prepare"; "atpg"; "flow.evaluate";
            "scan_sim.traditional" ];
        let lines s =
          List.filter
            (fun l -> String.trim l <> "")
            (String.split_on_char '\n' s)
        in
        Alcotest.(check bool) "one row per distinct stage" true
          (List.length (lines out) > List.length expected_phases / 2);
        Alcotest.(check int) "--top 1 keeps header plus one row" 2
          (List.length (lines (render ~top:1 ()))))

let suite =
  [
    Alcotest.test_case "disabled is a no-op" `Quick check_disabled_is_noop;
    Alcotest.test_case "span nesting and timing" `Quick
      check_span_nesting_and_timing;
    Alcotest.test_case "span survives exception" `Quick
      check_span_survives_exception;
    Alcotest.test_case "counter registry reset" `Quick
      check_counter_registry_reset;
    Alcotest.test_case "gauge" `Quick check_gauge;
    Alcotest.test_case "json round-trip" `Quick check_json_roundtrip_value;
    Alcotest.test_case "json rejects garbage" `Quick check_json_rejects_garbage;
    Alcotest.test_case "snapshot round-trip" `Quick check_snapshot_roundtrip;
    Alcotest.test_case "flow phase tree" `Quick check_flow_phase_tree;
    Alcotest.test_case "flow bit-identical on vs off" `Quick
      check_flow_bit_identical_on_off;
    Alcotest.test_case "s344 identical to seed" `Slow
      check_s344_identical_to_seed;
    Alcotest.test_case "histogram percentiles" `Quick
      check_histogram_percentiles;
    Alcotest.test_case "histogram disabled dropped" `Quick
      check_histogram_disabled_dropped;
    Alcotest.test_case "histogram in snapshot" `Quick
      check_histogram_in_snapshot;
    Alcotest.test_case "json string escaping" `Quick check_json_string_escaping;
    Alcotest.test_case "chrome trace export" `Quick check_chrome_trace_export;
    Alcotest.test_case "trace well-formed on exception" `Quick
      check_trace_wellformed_on_exception;
    Alcotest.test_case "span gc attribution" `Quick check_span_gc_attribution;
    Alcotest.test_case "event bus" `Quick check_event_bus;
    Alcotest.test_case "event line writer" `Quick check_event_line_writer;
    Alcotest.test_case "write_json_line framing" `Quick
      check_write_json_line_framing;
    Alcotest.test_case "sweep progress events" `Quick
      check_sweep_progress_events;
    Alcotest.test_case "profile table on s344" `Slow check_profile_table_s344;
  ]
