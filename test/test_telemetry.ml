(* Telemetry subsystem: span nesting and timing, the counter/gauge
   registry, JSON snapshot round-tripping, and the core guarantee that
   instrumentation only observes — flow results are bit-identical with
   telemetry on or off, and identical to the pre-telemetry seed. *)

module T = Telemetry
module J = Telemetry.Json

let with_telemetry fn =
  T.reset ();
  T.enable ();
  Fun.protect
    ~finally:(fun () ->
      T.disable ();
      T.reset ())
    fn

(* ---------- spans ---------- *)

let check_disabled_is_noop () =
  T.reset ();
  Alcotest.(check bool) "off by default here" false (T.enabled ());
  let r = T.Span.with_ ~name:"ghost" (fun () -> 41 + 1) in
  Alcotest.(check int) "transparent" 42 r;
  Alcotest.(check int) "no span recorded" 0 (List.length (T.Span.roots ()));
  let c = T.Counter.make "test.noop" in
  T.Counter.inc c;
  T.Counter.add c 10;
  Alcotest.(check int) "counter increments dropped" 0 (T.Counter.get c)

let check_span_nesting_and_timing () =
  with_telemetry (fun () ->
      let spin = ref 0.0 in
      T.Span.with_ ~name:"outer" (fun () ->
          T.Span.with_ ~name:"first" (fun () ->
              for i = 1 to 10_000 do
                spin := !spin +. float_of_int i
              done);
          T.Span.with_ ~name:"second" (fun () -> ignore (Sys.opaque_identity !spin)));
      match T.Span.roots () with
      | [ outer ] ->
        Alcotest.(check string) "root name" "outer" outer.T.Span.name;
        let kids = T.Span.children outer in
        Alcotest.(check (list string)) "children in execution order"
          [ "first"; "second" ]
          (List.map (fun s -> s.T.Span.name) kids);
        let d_outer = T.Span.duration_s outer in
        Alcotest.(check bool) "outer duration non-negative" true (d_outer >= 0.0);
        List.iter
          (fun kid ->
            let d = T.Span.duration_s kid in
            Alcotest.(check bool) "child duration non-negative" true (d >= 0.0);
            Alcotest.(check bool) "child starts after parent" true
              (kid.T.Span.start >= outer.T.Span.start);
            Alcotest.(check bool) "child within parent" true
              (d <= d_outer +. 1e-9))
          kids;
        Alcotest.(check bool) "children sum within parent" true
          (List.fold_left (fun acc k -> acc +. T.Span.duration_s k) 0.0 kids
          <= d_outer +. 1e-9)
      | roots -> Alcotest.failf "expected one root, got %d" (List.length roots))

let check_span_survives_exception () =
  with_telemetry (fun () ->
      (try
         T.Span.with_ ~name:"root" (fun () ->
             T.Span.with_ ~name:"boom" (fun () -> failwith "expected"))
       with Failure _ -> ());
      match T.Span.find "boom" with
      | None -> Alcotest.fail "span closed by exception should still be recorded"
      | Some s ->
        Alcotest.(check bool) "closed" true (T.Span.duration_s s >= 0.0))

(* ---------- counters and gauges ---------- *)

let check_counter_registry_reset () =
  with_telemetry (fun () ->
      let c = T.Counter.make "test.counter" in
      Alcotest.(check bool) "same handle for same name" true
        (c == T.Counter.make "test.counter");
      T.Counter.inc c;
      T.Counter.add c 5;
      Alcotest.(check int) "accumulated" 6 (T.Counter.get c);
      Alcotest.(check (option int)) "find by name" (Some 6)
        (T.Counter.find "test.counter");
      T.reset ();
      Alcotest.(check int) "reset between runs" 0 (T.Counter.get c);
      Alcotest.(check (option int)) "still registered" (Some 0)
        (T.Counter.find "test.counter"))

let check_gauge () =
  with_telemetry (fun () ->
      let g = T.Gauge.make "test.gauge" in
      Alcotest.(check (option (float 0.0))) "unset" None (T.Gauge.get g);
      T.Gauge.observe_max g 3.0;
      T.Gauge.observe_max g 1.0;
      Alcotest.(check (option (float 1e-12))) "max kept" (Some 3.0) (T.Gauge.get g);
      T.Gauge.set g 0.5;
      Alcotest.(check (option (float 1e-12))) "set overrides" (Some 0.5)
        (T.Gauge.get g))

(* ---------- JSON ---------- *)

let check_json_roundtrip_value () =
  let v =
    J.Obj
      [
        ("name", J.String "s27 \"quoted\" \\ tab\there\nnewline");
        ("count", J.Int 42);
        ("negative", J.Int (-7));
        ("pi", J.Float 3.141592653589793);
        ("tenth", J.Float 0.1);
        ("whole", J.Float 3.0);
        ("tiny", J.Float 1.25e-300);
        ("flag", J.Bool true);
        ("nothing", J.Null);
        ("seq", J.List [ J.Int 1; J.List []; J.Obj []; J.String "" ]);
      ]
  in
  match J.of_string (J.to_string v) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok v' ->
    Alcotest.(check bool) "round-trips exactly" true (J.equal v v');
    Alcotest.(check bool) "member" true
      (J.member "count" v' = Some (J.Int 42))

let check_json_rejects_garbage () =
  List.iter
    (fun s ->
      match J.of_string s with
      | Ok _ -> Alcotest.failf "accepted invalid JSON: %s" s
      | Error _ -> ())
    [ "{"; "[1,"; "nul"; "\"open"; "{\"a\" 1}"; "[1] trailing" ]

let check_snapshot_roundtrip () =
  with_telemetry (fun () ->
      let c = T.Counter.make "test.snapshot.counter" in
      T.Counter.add c 3;
      T.Gauge.set (T.Gauge.make "test.snapshot.gauge") 2.5;
      T.Span.with_ ~name:"snap" (fun () ->
          T.Span.with_ ~name:"inner" (fun () -> ()));
      let snap = T.metrics_snapshot () in
      (match J.of_string (J.to_string snap) with
      | Error e -> Alcotest.failf "snapshot reparse failed: %s" e
      | Ok snap' ->
        Alcotest.(check bool) "snapshot round-trips" true (J.equal snap snap'));
      Alcotest.(check bool) "schema tagged" true
        (J.member "schema" snap = Some (J.String "scanpower.telemetry/1")))

(* ---------- the flow under telemetry ---------- *)

let expected_phases =
  [
    "flow.run_benchmark"; "flow.prepare"; "techmap"; "atpg"; "flow.evaluate";
    "scan_sim.traditional"; "scan_sim.enhanced"; "c_algorithm";
    "scan_sim.input_control"; "mux_select"; "observability";
    "controlled_pattern"; "ivc"; "reorder"; "scan_sim.proposed";
  ]

let check_flow_phase_tree () =
  with_telemetry (fun () ->
      let _ = Scanpower.Flow.run_benchmark (Circuits.s27 ()) in
      List.iter
        (fun name ->
          match T.Span.find name with
          | Some s ->
            Alcotest.(check bool)
              (name ^ " has a duration")
              true
              (T.Span.duration_s s >= 0.0)
          | None -> Alcotest.failf "phase %s missing from span tree" name)
        expected_phases;
      Alcotest.(check bool) "ivc trials counted" true
        (match T.Counter.find "core.ivc.trials" with
        | Some n -> n > 0
        | None -> false);
      Alcotest.(check bool) "podem backtracks registered" true
        (T.Counter.find "atpg.podem.backtracks" <> None);
      Alcotest.(check bool) "scan sim cycles counted" true
        (match T.Counter.find "scan.sim.cycles" with
        | Some n -> n > 0
        | None -> false))

let check_flow_bit_identical_on_off () =
  T.disable ();
  T.reset ();
  let off = Scanpower.Flow.run_benchmark (Circuits.s27 ()) in
  let on = with_telemetry (fun () -> Scanpower.Flow.run_benchmark (Circuits.s27 ())) in
  Alcotest.(check bool) "comparison identical with telemetry on vs off" true
    (off = on)

(* Golden values captured from the pre-telemetry seed build (s344,
   default seed 42, telemetry disabled). Hex float literals are exact:
   any drift — however small — means the flow's numbers moved. The
   values pin the event-driven reference engine; the packed engine is
   checked against it (exactly for toggles/dynamic, to accumulation
   order for statics) by the packed-sim suite. *)
let check_s344_identical_to_seed () =
  T.disable ();
  T.reset ();
  let cmp =
    Scanpower.Flow.run_benchmark ~engine:Scan.Scan_sim.Scalar
      (Circuits.by_name "s344")
  in
  let f = Alcotest.testable (fun fmt x -> Format.fprintf fmt "%h" x)
      (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
  in
  Alcotest.(check int) "n_vectors" 35 cmp.Scanpower.Flow.n_vectors;
  Alcotest.(check int) "n_dffs" 15 cmp.Scanpower.Flow.n_dffs;
  Alcotest.(check int) "n_muxable" 14 cmp.Scanpower.Flow.n_muxable;
  Alcotest.(check int) "blocked_gates" 2 cmp.Scanpower.Flow.blocked_gates;
  Alcotest.(check int) "failed_gates" 0 cmp.Scanpower.Flow.failed_gates;
  Alcotest.(check int) "reordered_gates" 30 cmp.Scanpower.Flow.reordered_gates;
  let check_technique tag (t : Scanpower.Flow.technique_result) dyn static peak
      toggles =
    Alcotest.check f (tag ^ " dyn/f") dyn t.Scanpower.Flow.dynamic_per_hz_uw;
    Alcotest.check f (tag ^ " static") static t.Scanpower.Flow.static_uw;
    Alcotest.check f (tag ^ " peak static") peak t.Scanpower.Flow.peak_static_uw;
    Alcotest.(check int) (tag ^ " toggles") toggles t.Scanpower.Flow.total_toggles
  in
  check_technique "traditional" cmp.Scanpower.Flow.traditional
    0x1.d9de3c0fa8189p-25 0x1.ee052d0f39c79p+4 0x1.23adaa635ba18p+5 18654;
  check_technique "input_control" cmp.Scanpower.Flow.input_control
    0x1.b4b4b8847d70bp-25 0x1.ec114ab14076ep+4 0x1.21e69437d1ae3p+5 18484;
  check_technique "proposed" cmp.Scanpower.Flow.proposed
    0x1.b69c4ead2a6d3p-27 0x1.9e84c88ceddc6p+4 0x1.1fdc64d51f761p+5 4054;
  check_technique "enhanced_scan" cmp.Scanpower.Flow.enhanced_scan
    0x1.db5e0be0a176ep-28 0x1.fcecb06f1562fp+4 0x1.21e69437d1aa9p+5 2290

let suite =
  [
    Alcotest.test_case "disabled is a no-op" `Quick check_disabled_is_noop;
    Alcotest.test_case "span nesting and timing" `Quick
      check_span_nesting_and_timing;
    Alcotest.test_case "span survives exception" `Quick
      check_span_survives_exception;
    Alcotest.test_case "counter registry reset" `Quick
      check_counter_registry_reset;
    Alcotest.test_case "gauge" `Quick check_gauge;
    Alcotest.test_case "json round-trip" `Quick check_json_roundtrip_value;
    Alcotest.test_case "json rejects garbage" `Quick check_json_rejects_garbage;
    Alcotest.test_case "snapshot round-trip" `Quick check_snapshot_roundtrip;
    Alcotest.test_case "flow phase tree" `Quick check_flow_phase_tree;
    Alcotest.test_case "flow bit-identical on vs off" `Quick
      check_flow_bit_identical_on_off;
    Alcotest.test_case "s344 identical to seed" `Slow
      check_s344_identical_to_seed;
  ]
