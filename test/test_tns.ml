(* Transition node/gate set bookkeeping (Section 4 update rules). *)

open Netlist

let no_failed c = Array.make (Circuit.node_count c) false

(* ff -> NAND(ff, a) -> NOT -> po : one controllable side input *)
let gadget () =
  let b = Circuit.Builder.create ~name:"gadget" () in
  let a = Circuit.Builder.add_input b "a" in
  let ff = Circuit.Builder.declare_dff b "ff" in
  let g = Circuit.Builder.add_gate b Gate.Nand "g" [ ff; a ] in
  let h = Circuit.Builder.add_gate b Gate.Not "h" [ g ] in
  Circuit.Builder.connect_dff b ff ~d:h;
  let _ = Circuit.Builder.add_output b "po" h in
  Circuit.Builder.build b

let fresh_values c =
  let v = Sim.Ternary_sim.make_values c Logic.X in
  Sim.Ternary_sim.propagate c v;
  v

let check_seed_becomes_tn () =
  let c = gadget () in
  let ff = Circuit.find c "ff" in
  let st = Scanpower.Tns.compute c ~values:(fresh_values c) ~seeds:[ ff ] ~failed:(no_failed c) in
  Alcotest.(check bool) "seed is tn" true st.Scanpower.Tns.tns.(ff)

let check_unblocked_gate_in_tgs () =
  let c = gadget () in
  let ff = Circuit.find c "ff" and g = Circuit.find c "g" in
  let st = Scanpower.Tns.compute c ~values:(fresh_values c) ~seeds:[ ff ] ~failed:(no_failed c) in
  Alcotest.(check (list int)) "g is the only TGS member" [ g ] st.Scanpower.Tns.tgs;
  Alcotest.(check bool) "g not tn yet" false st.Scanpower.Tns.tns.(g)

let check_controlling_value_blocks () =
  let c = gadget () in
  let ff = Circuit.find c "ff" and g = Circuit.find c "g" in
  let a = Circuit.find c "a" in
  let values = fresh_values c in
  values.(a) <- Logic.Zero;
  (* controlling for NAND *)
  Sim.Ternary_sim.propagate c values;
  let st = Scanpower.Tns.compute c ~values ~seeds:[ ff ] ~failed:(no_failed c) in
  Alcotest.(check (list int)) "tgs empty" [] st.Scanpower.Tns.tgs;
  Alcotest.(check bool) "g not tn" false st.Scanpower.Tns.tns.(g);
  Alcotest.(check bool) "h not tn" false st.Scanpower.Tns.tns.(Circuit.find c "h")

let check_noncontrolling_value_propagates () =
  let c = gadget () in
  let ff = Circuit.find c "ff" and g = Circuit.find c "g" in
  let a = Circuit.find c "a" in
  let values = fresh_values c in
  values.(a) <- Logic.One;
  (* non-controlling: the transition passes through *)
  Sim.Ternary_sim.propagate c values;
  let st = Scanpower.Tns.compute c ~values ~seeds:[ ff ] ~failed:(no_failed c) in
  Alcotest.(check (list int)) "tgs empty (resolved)" [] st.Scanpower.Tns.tgs;
  Alcotest.(check bool) "g is tn" true st.Scanpower.Tns.tns.(g);
  (* NOT always propagates *)
  Alcotest.(check bool) "h is tn" true st.Scanpower.Tns.tns.(Circuit.find c "h")

let check_inverter_like_always_propagate () =
  let b = Circuit.Builder.create () in
  let ff = Circuit.Builder.declare_dff b "ff" in
  let a = Circuit.Builder.add_input b "a" in
  let x = Circuit.Builder.add_gate b Gate.Xor "x" [ ff; a ] in
  let n = Circuit.Builder.add_gate b Gate.Xnor "n" [ x; a ] in
  Circuit.Builder.connect_dff b ff ~d:n;
  let _ = Circuit.Builder.add_output b "po" n in
  let c = Circuit.Builder.build b in
  let ff_id = Circuit.find c "ff" in
  let values = fresh_values c in
  values.(Circuit.find c "a") <- Logic.One;
  Sim.Ternary_sim.propagate c values;
  let st = Scanpower.Tns.compute c ~values ~seeds:[ ff_id ] ~failed:(no_failed c) in
  (* XOR/XNOR cannot block: both downstream nodes toggle, TGS empty *)
  Alcotest.(check bool) "xor is tn" true st.Scanpower.Tns.tns.(Circuit.find c "x");
  Alcotest.(check bool) "xnor is tn" true st.Scanpower.Tns.tns.(Circuit.find c "n");
  Alcotest.(check (list int)) "no blockable gate" [] st.Scanpower.Tns.tgs

let check_failed_gate_spreads () =
  let c = gadget () in
  let ff = Circuit.find c "ff" and g = Circuit.find c "g" in
  let failed = no_failed c in
  failed.(g) <- true;
  let st = Scanpower.Tns.compute c ~values:(fresh_values c) ~seeds:[ ff ] ~failed in
  Alcotest.(check bool) "failed gate forced tn" true st.Scanpower.Tns.tns.(g);
  Alcotest.(check bool) "spreads to NOT" true st.Scanpower.Tns.tns.(Circuit.find c "h")

let check_definite_value_never_tn () =
  (* even a seed-adjacent gate with a definite output value cannot
     toggle *)
  let c = gadget () in
  let ff = Circuit.find c "ff" and g = Circuit.find c "g" in
  let values = fresh_values c in
  values.(Circuit.find c "a") <- Logic.Zero;
  Sim.Ternary_sim.propagate c values;
  (* g = NAND(ff, 0) = 1 definite *)
  Alcotest.(check bool) "g definite" true (Logic.equal values.(g) Logic.One);
  let st = Scanpower.Tns.compute c ~values ~seeds:[ ff ] ~failed:(no_failed c) in
  Alcotest.(check bool) "definite never tn" false st.Scanpower.Tns.tns.(g)

let check_pick_largest_load () =
  let c = Techmap.Mapper.map (Circuits.s27 ()) in
  let tgs =
    Array.to_list (Circuit.nodes c)
    |> List.filter_map (fun nd ->
           if Gate.is_logic nd.Circuit.kind then Some nd.Circuit.id else None)
  in
  match Scanpower.Tns.pick_largest_load c tgs with
  | None -> Alcotest.fail "nonempty tgs"
  | Some best ->
    let load = Techmap.Loads.node_load c best in
    List.iter
      (fun id ->
        Alcotest.(check bool) "is maximal" true
          (load >= Techmap.Loads.node_load c id))
      tgs

let check_pick_empty () =
  let c = Techmap.Mapper.map (Circuits.s27 ()) in
  Alcotest.(check bool) "none" true (Scanpower.Tns.pick_largest_load c [] = None)

let check_transition_count () =
  let c = gadget () in
  let ff = Circuit.find c "ff" in
  let st = Scanpower.Tns.compute c ~values:(fresh_values c) ~seeds:[ ff ] ~failed:(no_failed c) in
  Alcotest.(check int) "only the seed" 1 (Scanpower.Tns.transition_count st)

let suite =
  [
    Alcotest.test_case "seed becomes tn" `Quick check_seed_becomes_tn;
    Alcotest.test_case "unblocked gate in TGS" `Quick check_unblocked_gate_in_tgs;
    Alcotest.test_case "controlling value blocks" `Quick check_controlling_value_blocks;
    Alcotest.test_case "non-controlling propagates" `Quick
      check_noncontrolling_value_propagates;
    Alcotest.test_case "xor/xnor always propagate" `Quick
      check_inverter_like_always_propagate;
    Alcotest.test_case "failed gate spreads" `Quick check_failed_gate_spreads;
    Alcotest.test_case "definite value never tn" `Quick check_definite_value_never_tn;
    Alcotest.test_case "pick largest load" `Quick check_pick_largest_load;
    Alcotest.test_case "pick from empty" `Quick check_pick_empty;
    Alcotest.test_case "transition count" `Quick check_transition_count;
  ]
