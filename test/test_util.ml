(* Deterministic RNG: the reproducibility of every experiment rests on
   these properties. *)

let check_determinism () =
  let a = Util.Rng.create 42 and b = Util.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Util.Rng.bits a) (Util.Rng.bits b)
  done

let check_seed_sensitivity () =
  let a = Util.Rng.create 1 and b = Util.Rng.create 2 in
  let xs = List.init 20 (fun _ -> Util.Rng.bits a) in
  let ys = List.init 20 (fun _ -> Util.Rng.bits b) in
  Alcotest.(check bool) "different streams" true (xs <> ys)

let check_int_bounds () =
  let rng = Util.Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Util.Rng.int rng 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done;
  Alcotest.(check int) "bound one" 0 (Util.Rng.int rng 1);
  Alcotest.check_raises "bound zero"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Util.Rng.int rng 0))

let check_float_range () =
  let rng = Util.Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Util.Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let check_bool_balance () =
  let rng = Util.Rng.create 3 in
  let trues = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Util.Rng.bool rng then incr trues
  done;
  let ratio = float_of_int !trues /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "balanced coin: %.3f" ratio)
    true
    (ratio > 0.45 && ratio < 0.55)

let check_bits_positive () =
  let rng = Util.Rng.create 5 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "non-negative" true (Util.Rng.bits rng >= 0)
  done

let check_split_independence () =
  let parent = Util.Rng.create 9 in
  let child = Util.Rng.split parent in
  (* the child must not replay the parent's stream *)
  let parent_xs = List.init 10 (fun _ -> Util.Rng.bits parent) in
  let child_xs = List.init 10 (fun _ -> Util.Rng.bits child) in
  Alcotest.(check bool) "independent" true (parent_xs <> child_xs)

let check_bool_array () =
  let rng = Util.Rng.create 13 in
  let a = Util.Rng.bool_array rng 64 in
  Alcotest.(check int) "length" 64 (Array.length a);
  Alcotest.(check bool) "not constant" true
    (Array.exists (fun b -> b) a && Array.exists (fun b -> not b) a)

let check_int_distribution () =
  (* all residues of a small modulus appear *)
  let rng = Util.Rng.create 17 in
  let seen = Array.make 7 0 in
  for _ = 1 to 2000 do
    seen.(Util.Rng.int rng 7) <- seen.(Util.Rng.int rng 7) + 1
  done;
  Array.iteri
    (fun i n -> Alcotest.(check bool) (Printf.sprintf "residue %d seen" i) true (n > 0))
    seen

let suite =
  [
    Alcotest.test_case "determinism" `Quick check_determinism;
    Alcotest.test_case "seed sensitivity" `Quick check_seed_sensitivity;
    Alcotest.test_case "int bounds" `Quick check_int_bounds;
    Alcotest.test_case "float range" `Quick check_float_range;
    Alcotest.test_case "bool balance" `Quick check_bool_balance;
    Alcotest.test_case "bits positive" `Quick check_bits_positive;
    Alcotest.test_case "split independence" `Quick check_split_independence;
    Alcotest.test_case "bool array" `Quick check_bool_array;
    Alcotest.test_case "int distribution" `Quick check_int_distribution;
  ]
