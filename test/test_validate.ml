(* The netlist lint pass: every check, all-diagnostics collection (not
   first-error), cycle naming, and the single-edit mutation property —
   any one-decl corruption of a valid netlist is either still valid or
   yields a diagnostic naming the edited net. *)

open Netlist

let lint = Bench_parser.lint

let find check diags = List.filter (fun d -> d.Validate.check = check) diags

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  needle = "" || go 0

let check_clean_netlists () =
  Alcotest.(check int) "s27 lints clean" 0
    (List.length (Validate.errors (lint Circuits.s27_bench_text)));
  let c =
    Circuits.generate
      { Circuits.name = "v"; n_pi = 5; n_po = 3; n_ff = 4; n_gates = 40;
        seed = 3 }
  in
  Alcotest.(check int) "generated netlist lints clean" 0
    (List.length (Validate.errors (lint (Bench_writer.to_string c))))

let check_all_collected () =
  (* four independent problems; all four must come back at once *)
  let text =
    "INPUT(a)\n\
     y = NAND(a)\n\
     z = FROB(a)\n\
     w = NOT(ghost)\n\
     w = NOT(a)\n\
     OUTPUT(y)\nOUTPUT(z)\nOUTPUT(w)\n"
  in
  let diags = lint text in
  Alcotest.(check int) "arity" 1 (List.length (find "arity" diags));
  Alcotest.(check int) "opcode" 1 (List.length (find "opcode" diags));
  Alcotest.(check int) "undriven" 1 (List.length (find "undriven" diags));
  Alcotest.(check int) "multiply-driven" 1
    (List.length (find "multiply-driven" diags))

let check_cycle_named () =
  let text =
    "INPUT(x)\n\
     a = NAND(x, b)\n\
     b = NOT(c)\n\
     c = NOT(a)\n\
     OUTPUT(a)\n"
  in
  match find "combinational-loop" (lint text) with
  | [ d ] ->
    (* one back edge, the full cycle spelled out in order *)
    Alcotest.(check bool)
      (Printf.sprintf "cycle named in %S" d.Validate.message)
      true
      (contains ~needle:"a -> b -> c -> a" d.Validate.message
      || contains ~needle:"b -> c -> a -> b" d.Validate.message
      || contains ~needle:"c -> a -> b -> c" d.Validate.message)
  | ds ->
    Alcotest.fail (Printf.sprintf "expected exactly one loop, got %d" (List.length ds))

let check_dff_breaks_cycle () =
  (* the same feedback through a flip-flop is legitimate sequential
     logic, not a combinational loop *)
  let text = "INPUT(x)\na = NAND(x, b)\nb = DFF(a)\nOUTPUT(a)\n" in
  Alcotest.(check int) "no loop through a DFF" 0
    (List.length (find "combinational-loop" (lint text)))

let check_dangling_and_no_output () =
  let diags = lint "INPUT(a)\ny = NOT(a)\n" in
  Alcotest.(check int) "dangling warning" 1 (List.length (find "dangling" diags));
  Alcotest.(check int) "no-output warning" 1
    (List.length (find "no-output" diags));
  Alcotest.(check int) "warnings are not errors" 0
    (List.length (Validate.errors diags))

let check_line_numbers () =
  let diags = lint "INPUT(a)\n# comment\n\ny = NAND(a)\nOUTPUT(y)\n" in
  match find "arity" diags with
  | [ d ] -> Alcotest.(check int) "diagnostic points at the source line" 4 d.Validate.line
  | _ -> Alcotest.fail "expected one arity diagnostic"

(* ---- single-edit mutation property -------------------------------- *)

(* A "single edit" rewrites exactly one gate declaration of a valid
   netlist. Either the result is still a valid netlist (e.g. dropping
   one input of a 3-input AND) or the lint output names the edited net
   (as the diagnostic's net or inside its message). *)

let base_text =
  let c =
    Circuits.generate
      { Circuits.name = "mut"; n_pi = 6; n_po = 4; n_ff = 5; n_gates = 50;
        seed = 17 }
  in
  Bench_writer.to_string c

let split_decl line =
  match String.index_opt line '=' with
  | None -> None
  | Some eq -> (
    let lhs = String.trim (String.sub line 0 eq) in
    let rhs = String.trim (String.sub line (eq + 1) (String.length line - eq - 1)) in
    match String.index_opt rhs '(' with
    | None -> None
    | Some lp when rhs.[String.length rhs - 1] = ')' ->
      let kind = String.trim (String.sub rhs 0 lp) in
      let args =
        String.sub rhs (lp + 1) (String.length rhs - lp - 2)
        |> String.split_on_char ','
        |> List.map String.trim
        |> List.filter (fun a -> a <> "")
      in
      Some (lhs, kind, args)
    | Some _ -> None)

let unsplit (lhs, kind, args) =
  Printf.sprintf "%s = %s(%s)" lhs kind (String.concat ", " args)

(* (line_choice, mutation_choice, arg_choice) -> (mutated text, edited net) *)
let mutate (li, mi, ai) =
  let lines = String.split_on_char '\n' base_text in
  let decls =
    List.filteri (fun _ l -> split_decl l <> None) lines
    |> List.mapi (fun i l -> (i, l))
  in
  let _, line = List.nth decls (li mod List.length decls) in
  let lhs, kind, args = Option.get (split_decl line) in
  let nth_arg = List.nth args (ai mod List.length args) in
  let replace_arg repl =
    List.mapi (fun i a -> if i = ai mod List.length args then repl else a) args
  in
  let mutated, edited =
    match mi mod 5 with
    | 0 -> (Some (unsplit (lhs, kind, replace_arg "GHOST_NET")), "GHOST_NET")
    | 1 -> (Some (line ^ "\n" ^ unsplit (lhs, kind, args)), lhs)
    | 2 -> (Some (unsplit (lhs, "FROB", args)), lhs)
    | 3 ->
      let dropped = List.filteri (fun i _ -> i <> ai mod List.length args) args in
      (Some (unsplit (lhs, kind, dropped)), lhs)
    | _ -> (Some (unsplit (lhs, kind, replace_arg lhs)), lhs)
  in
  let text =
    String.concat "\n"
      (List.map (fun l -> if l = line then Option.get mutated else l) lines)
  in
  (text, edited, nth_arg)

let prop_single_edit =
  QCheck.Test.make ~name:"single-edit corruption is caught or harmless"
    ~count:200
    (QCheck.make
       QCheck.Gen.(triple (int_range 0 1000) (int_range 0 1000) (int_range 0 1000)))
    (fun (li, mi, ai) ->
      let text, edited, dropped_arg = mutate (li, mi, ai) in
      match Validate.errors (lint text) with
      | [] -> true (* still a valid netlist — e.g. AND arity 3 -> 2 *)
      | errs ->
        List.exists
          (fun d ->
            d.Validate.net = edited
            || contains ~needle:edited d.Validate.message
            (* dropping an arg can orphan the dropped net instead *)
            || d.Validate.net = dropped_arg)
          errs)

let suite =
  [
    Alcotest.test_case "clean netlists lint clean" `Quick check_clean_netlists;
    Alcotest.test_case "all diagnostics collected" `Quick check_all_collected;
    Alcotest.test_case "combinational loop named" `Quick check_cycle_named;
    Alcotest.test_case "dff breaks the cycle" `Quick check_dff_breaks_cycle;
    Alcotest.test_case "dangling + no-output warnings" `Quick
      check_dangling_and_no_output;
    Alcotest.test_case "line numbers survive comments" `Quick check_line_numbers;
    QCheck_alcotest.to_alcotest prop_single_edit;
  ]
